"""Chaos smoke test: a sweep under a 20% worker-crash rate survives.

``crashrate:p=0.2,seed=3`` deterministically kills the workers of two
of the eight keys below on their first attempt (the selection hashes
the run key, so it is stable across processes and interpreters).  The
sweep must retry those keys, keep every sibling's completed work, and
account for all eight keys exactly once, in input order.
"""

import pytest

from repro.core.platform import EmulationMode
from repro.faults.worker import ENV_VAR, _KEY_FIELDS, _key_fraction
from repro.harness.experiment import ExperimentRunner, RetryPolicy, RunKey
from repro.observability.metrics import METRICS

COLLECTORS = ["PCM-Only", "KG-N", "KG-B", "KG-N+LOO", "KG-B+LOO", "KG-W",
              "KG-W-LOO", "KG-W-MDO"]
KEYS = [RunKey("fop", collector, 1, "default", EmulationMode.EMULATION)
        for collector in COLLECTORS]
SPEC = "crashrate:p=0.2,seed=3,attempts=1"


def _crashes(key: RunKey) -> bool:
    fields = dict(zip(_KEY_FIELDS, (
        key.benchmark, key.collector, str(key.instances), key.dataset,
        key.mode.value, str(key.llc_size), str(key.scale))))
    return _key_fraction(fields, "3") < 0.2


@pytest.fixture(autouse=True)
def clean_registry():
    METRICS.reset()
    yield
    METRICS.reset()


def test_chaos_sweep_completes_with_every_key_accounted(monkeypatch):
    doomed = [key for key in KEYS if _crashes(key)]
    assert doomed, "seed 3 must kill at least one key or the test is moot"
    monkeypatch.setenv(ENV_VAR, SPEC)
    runner = ExperimentRunner()
    report = runner.sweep(KEYS, max_workers=4,
                          retry=RetryPolicy(max_attempts=3))
    assert [outcome.key for outcome in report.outcomes] == KEYS
    assert report.ok, [
        (o.key.collector, o.failure.exception_type) for o in report.failures]
    for outcome in report.outcomes:
        if outcome.key in doomed:
            assert outcome.attempts >= 2, (
                f"{outcome.key.collector} should have crashed once")
    # Both crashes may land in one pool collapse, so at least one retry
    # event is guaranteed — not one per doomed key.
    assert METRICS.value("runner.retries") >= 1
    assert runner.executions == len(KEYS)
