"""The in-tree hook points: kernel, heap budget, and monitor sites."""

import pytest

from repro.config import PAGE_SIZE
from repro.core.monitor import WriteRateMonitor
from repro.faults import FAULTS, FaultError, FaultPlan
from repro.kernel.pagetable import PageFault
from repro.machine.memory import OutOfPhysicalMemory
from repro.observability.metrics import METRICS


@pytest.fixture(autouse=True)
def pristine():
    FAULTS.uninstall()
    METRICS.reset()
    yield
    FAULTS.uninstall()
    METRICS.reset()


class TestKernelBindSite:
    def test_injected_frame_exhaustion_maps_nothing(self, kernel):
        process = kernel.create_process(affinity_socket=0)
        plan = FaultPlan().add("kernel.mmap_bind", error="frame_exhausted")
        with FAULTS.installed(plan):
            with pytest.raises(OutOfPhysicalMemory):
                kernel.mmap_bind(process, 0x10000, PAGE_SIZE, node_id=0,
                                 tag="heap")
        assert kernel.machine.nodes[0].frames_in_use == 0

    def test_injected_page_fault_carries_bound_vaddr(self, kernel):
        process = kernel.create_process(affinity_socket=0)
        plan = FaultPlan().add("kernel.mmap_bind", error="page_fault")
        with FAULTS.installed(plan):
            with pytest.raises(PageFault) as excinfo:
                kernel.mmap_bind(process, 0x40000, PAGE_SIZE, node_id=1)
        assert excinfo.value.vaddr == 0x40000

    def test_tag_match_spares_other_mappings(self, kernel):
        process = kernel.create_process(affinity_socket=0)
        plan = FaultPlan().add("kernel.mmap_bind", times=-1,
                               error="frame_exhausted", tag="monitor")
        with FAULTS.installed(plan):
            kernel.mmap_bind(process, 0x10000, PAGE_SIZE, node_id=0,
                             tag="heap")
            with pytest.raises(OutOfPhysicalMemory):
                kernel.mmap_bind(process, 0x20000, PAGE_SIZE, node_id=0,
                                 tag="monitor")
        assert kernel.machine.nodes[0].frames_in_use == 1

    def test_uninstalled_plan_costs_no_arrivals(self, kernel):
        before = FAULTS.arrivals("kernel.mmap_bind")
        process = kernel.create_process(affinity_socket=0)
        kernel.mmap_bind(process, 0x10000, PAGE_SIZE, node_id=0)
        assert FAULTS.arrivals("kernel.mmap_bind") == before


class TestMonitorSite:
    def test_sample_can_be_wedged(self, kernel):
        monitor = WriteRateMonitor(kernel)
        plan = FaultPlan().add("monitor.sample", at=2)
        with FAULTS.installed(plan):
            monitor.sample(0)
            with pytest.raises(FaultError):
                monitor.sample(1)
        assert len(monitor.samples) == 1
        monitor.shutdown()

    def test_stale_sample_republishes_previous_counters(self, kernel):
        monitor = WriteRateMonitor(kernel)
        plan = FaultPlan().add("monitor.sample", at=2, action="stale")
        with FAULTS.installed(plan):
            first = monitor.sample(0)
            kernel.machine.nodes[1].record_write(0)
            stale = monitor.sample(1)
            fresh = monitor.sample(2)
        # The stale sample repeats the old counters; the PCM write only
        # becomes visible once sampling recovers.
        assert stale.node_writes == first.node_writes
        assert fresh.node_writes[1] == first.node_writes[1] + 1
        monitor.shutdown()


class TestHeapCommitSite:
    def test_exhaust_denies_the_budget_check(self, vm):
        heap = vm.heap
        assert heap.may_commit(heap.chunk_size)
        plan = FaultPlan().add("runtime.heap.commit", action="exhaust",
                               times=-1)
        with FAULTS.installed(plan):
            assert not heap.may_commit(heap.chunk_size)
        assert heap.may_commit(heap.chunk_size)
