"""Mechanics of the fault injector: arming, counting, determinism."""

import pytest

from repro.faults import (
    FAULTS,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    make_exception,
)
from repro.kernel.pagetable import PageFault
from repro.kernel.vm import MBindError
from repro.machine.memory import OutOfPhysicalMemory
from repro.observability.metrics import METRICS
from repro.runtime.heap import OutOfMemoryError


@pytest.fixture(autouse=True)
def pristine():
    FAULTS.install(FaultPlan())  # resets arrival counters and fired list
    FAULTS.uninstall()
    METRICS.reset()
    yield
    FAULTS.uninstall()
    METRICS.reset()


class TestFaultSpec:
    def test_armed_window(self):
        spec = FaultSpec(site="s", at=3, times=2)
        assert [spec.armed_for(n) for n in range(1, 7)] == [
            False, False, True, True, False, False]

    def test_times_minus_one_is_forever(self):
        spec = FaultSpec(site="s", at=2, times=-1)
        assert not spec.armed_for(1)
        assert spec.armed_for(2) and spec.armed_for(1000)

    def test_match_filters_context(self):
        spec = FaultSpec(site="s", match=(("tag", "monitor"),))
        assert spec.matches({"tag": "monitor", "node": 0})
        assert not spec.matches({"tag": "heap"})
        assert not spec.matches({})


class TestMakeException:
    def test_kinds_map_to_organic_types(self):
        assert isinstance(make_exception("oom", "s", 1), OutOfMemoryError)
        assert isinstance(make_exception("page_fault", "s", 1), PageFault)
        assert isinstance(make_exception("frame_exhausted", "s", 1),
                          OutOfPhysicalMemory)
        assert isinstance(make_exception("mbind", "s", 1), MBindError)
        assert isinstance(make_exception("anything", "s", 1), FaultError)

    def test_page_fault_carries_context_vaddr(self):
        exc = make_exception("page_fault", "s", 1, vaddr=0x1234000)
        assert exc.vaddr == 0x1234000


class TestInjector:
    def test_no_plan_means_inactive(self):
        assert FAULTS.active is None
        # arrive() without a plan is a no-op returning None.
        assert FAULTS.arrive("kernel.mmap_bind") is None
        assert FAULTS.arrivals("kernel.mmap_bind") == 0

    def test_fires_on_nth_arrival_only(self):
        injector = FaultInjector()
        injector.install(FaultPlan().add("s", at=3))
        assert injector.arrive("s") is None
        assert injector.arrive("s") is None
        with pytest.raises(FaultError, match="arrival 3"):
            injector.arrive("s")
        # times=1: disarmed again afterwards.
        assert injector.arrive("s") is None
        assert injector.arrivals("s") == 4

    def test_non_raise_action_returned_to_hook(self):
        injector = FaultInjector()
        injector.install(FaultPlan().add("heap", action="exhaust"))
        assert injector.arrive("heap") == "exhaust"

    def test_match_scopes_the_trigger(self):
        injector = FaultInjector()
        injector.install(FaultPlan().add("bind", times=-1, tag="monitor"))
        assert injector.arrive("bind", tag="heap") is None
        with pytest.raises(FaultError):
            injector.arrive("bind", tag="monitor")

    def test_installed_context_manager_uninstalls(self):
        plan = FaultPlan().add("s", at=100)
        with FAULTS.installed(plan):
            assert FAULTS.active is plan
            FAULTS.arrive("s")
        assert FAULTS.active is None

    def test_install_resets_arrivals_and_fired(self):
        injector = FaultInjector()
        injector.install(FaultPlan().add("s", at=1))
        with pytest.raises(FaultError):
            injector.arrive("s")
        assert injector.fired
        injector.install(FaultPlan())
        assert injector.arrivals("s") == 0
        assert injector.fired == []

    def test_probabilistic_specs_are_seed_deterministic(self):
        def fired_arrivals(seed):
            injector = FaultInjector()
            injector.install(FaultPlan(seed=seed).add(
                "s", at=1, times=-1, probability=0.3, action="mark"))
            return [n for n in range(1, 101)
                    if injector.arrive("s") == "mark"]

        first = fired_arrivals(seed=7)
        assert fired_arrivals(seed=7) == first
        assert fired_arrivals(seed=8) != first
        assert 10 < len(first) < 60  # roughly p=0.3 of 100

    def test_fired_record_and_metric(self):
        injector = FaultInjector()
        injector.install(FaultPlan().add("kernel.mmap_bind", at=1,
                                         error="frame_exhausted"))
        with pytest.raises(OutOfPhysicalMemory):
            injector.arrive("kernel.mmap_bind", node=1)
        fault = injector.fired[0]
        assert (fault.site, fault.arrival, fault.action, fault.error) == (
            "kernel.mmap_bind", 1, "raise", "frame_exhausted")
        assert METRICS.value("faults.injected.kernel.mmap_bind") == 1
