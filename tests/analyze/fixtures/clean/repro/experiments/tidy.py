"""Clean fixture: the negative control for every checker.

Everything here is the *sanctioned* counterpart of a planted violation:
seeded RNG, host timing outside the hot layers, stable ordering, sorted
set iteration, counters mutated by their owner, private state touched
only through ``self``.
"""

import random
import time

from repro.harness.sweep import run_many

rng = random.Random(7)


def jitter() -> float:
    return rng.random()


def tick() -> float:
    return time.perf_counter()


def order(objs: list) -> list:
    return sorted(objs, key=len)


def total(items: set) -> int:
    acc = 0
    for item in sorted(items):
        acc += item
    return acc


class CacheLevel:
    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.flushed_dirty = 0
        self._lines = {}

    def record(self) -> None:
        self.hits += 1
        self._lines[0] = 1

    def miss(self, dirty: bool) -> None:
        self.misses += 1
        self.evictions += 1
        if dirty:
            self.dirty_evictions += 1
            self.flushed_dirty += 1


def touch() -> object:
    return run_many
