"""Clean async fixture: the sanctioned versions of the A-rule patterns.

Awaitable sleeps, blocking work handed to the executor as a *reference*
(never called on the loop), and a process pool carrying the
``initializer=`` that resets inherited signal state.
"""

import asyncio
from concurrent.futures import ProcessPoolExecutor


def _worker_init() -> None:
    pass


def _load_snapshot(path: str) -> str:
    with open(path) as handle:
        return handle.read()


class Gateway:
    async def handle(self, path: str) -> str:
        await asyncio.sleep(0.1)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, _load_snapshot, path)

    async def boot(self) -> None:
        self.pool = ProcessPoolExecutor(max_workers=2,
                                        initializer=_worker_init)
