"""Clean span fixture: every exception-safe balance form S001 accepts.

try/finally, the context-manager form, and the platform's unwind idiom
(pop in a catch-all handler plus the normal-path pop).
"""

from repro.observability.trace import TRACER


def balanced(work) -> None:
    frame = TRACER.push("harness.balanced")
    try:
        work()
    finally:
        TRACER.pop(frame)


def managed(work) -> None:
    with TRACER.span("harness.managed"):
        work()


def unwound(work) -> int:
    frame = TRACER.push("harness.unwound")
    try:
        result = work()
    except BaseException:
        TRACER.pop(frame, error=True)
        raise
    TRACER.pop(frame)
    return result
