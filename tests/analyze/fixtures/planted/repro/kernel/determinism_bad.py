"""Planted determinism violations; tests/analyze asserts D001-D004."""

import random
import time


def jitter() -> float:
    return random.random()


def stamp() -> float:
    return time.time()


def tick() -> float:
    return time.perf_counter()


def order(objs: list) -> list:
    return sorted(objs, key=id)


def total() -> int:
    acc = 0
    for item in {1, 2, 3}:
        acc += item
    return acc
