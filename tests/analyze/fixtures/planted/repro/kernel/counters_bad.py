"""Planted counter-discipline violation; tests/analyze asserts C001."""


def bump(kernel: object) -> None:
    kernel.page_faults += 1
