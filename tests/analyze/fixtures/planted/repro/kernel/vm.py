"""Planted hook-coverage violation; tests/analyze asserts H001.

The path mirrors ``src/repro/kernel/vm.py`` so the module resolves to
``repro.kernel.vm`` and the default hook-site table applies.
"""


class Kernel:
    def munmap(self, process: object, vaddr: int, length: int) -> None:
        self.munmap_calls += 1

    # Every registered Kernel counter except pages_migrated gets an
    # increment here — pages_migrated is the planted C002.
    def note_counters(self) -> None:
        self.mmap_calls += 1
        self.retag_calls += 1
        self.pages_mapped += 1
        self.pages_unmapped += 1
        self.page_faults += 1
        self.migration_writes += 1
        self.migration_cycles += 1
