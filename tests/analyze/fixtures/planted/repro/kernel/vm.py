"""Planted hook-coverage violation; tests/analyze asserts H001.

The path mirrors ``src/repro/kernel/vm.py`` so the module resolves to
``repro.kernel.vm`` and the default hook-site table applies.
"""


class Kernel:
    def munmap(self, process: object, vaddr: int, length: int) -> None:
        self.munmap_calls += 1
