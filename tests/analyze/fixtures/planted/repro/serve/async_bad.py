"""Planted async-safety violations; tests/analyze asserts A001/A002/A003.

The path mirrors ``src/repro/serve`` so the module lands in the default
``async-packages`` scope.
"""

import time
from concurrent.futures import ProcessPoolExecutor


def _load_snapshot(path: str) -> str:
    with open(path) as handle:
        return handle.read()


class Gateway:
    async def handle(self, path: str) -> str:
        time.sleep(0.1)
        return _load_snapshot(path)

    async def boot(self) -> None:
        self.pool = ProcessPoolExecutor(max_workers=2)
