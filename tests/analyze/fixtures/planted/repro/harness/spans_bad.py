"""Planted span-balance violations; tests/analyze asserts S001/S002.

``unbalanced`` pops only on the fall-through path (an exception in
``work()`` leaks the span); ``discarded`` throws the frame away.
"""

from repro.observability.trace import TRACER


def unbalanced(work) -> None:
    frame = TRACER.push("harness.unbalanced")
    work()
    TRACER.pop(frame)


def discarded(work) -> None:
    TRACER.push("harness.discarded")
    work()
