"""Planted layering violations; tests/analyze asserts L001 and L002."""

from repro.harness.sweep import run_many

from repro.observability.trace import TRACER


def peek() -> object:
    return (run_many, TRACER)
