"""Planted race-pattern violation; tests/analyze asserts RC01."""


class Thief:
    def poke(self, victim: object) -> None:
        victim._sets[0] = 1
