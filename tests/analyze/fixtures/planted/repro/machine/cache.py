"""Planted parity reference class; tests/analyze asserts P001/P002.

Mirrors ``repro.machine.cache`` so the default ``engine-cache`` parity
group resolves to this fixture pair when the planted tree is scanned.
``bump`` keeps the cache counters incremented (C002 negative control).
"""


class CacheLevel:
    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.flushed_dirty = 0

    def bump(self) -> None:
        self.hits += 1
        self.misses += 1
        self.evictions += 1
        self.dirty_evictions += 1
        self.flushed_dirty += 1

    def lookup(self, line: int) -> bool:
        return False

    def access(self, line: int, is_write: bool) -> bool:
        return False
