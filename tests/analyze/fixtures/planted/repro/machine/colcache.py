"""Planted parity drift; tests/analyze asserts P001 and P002.

Relative to the fixture ``CacheLevel`` reference: ``access`` is missing
entirely (P001) and ``lookup`` grew an extra required parameter (P002).
"""


class ColumnarCacheLevel:
    def __init__(self) -> None:
        self.hits = 0

    def bump(self) -> None:
        self.hits += 1

    def lookup(self, line: int, way: int) -> bool:
        return False
