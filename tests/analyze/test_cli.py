"""The ``repro lint`` verb: exit codes, JSON output, selection, baseline."""

import json

from tests.analyze.conftest import CLEAN, PLANTED
from repro.cli import main


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(CLEAN), "--baseline", "none"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", str(PLANTED), "--baseline", "none"]) == 1
        out = capsys.readouterr().out
        assert "C001" in out and "RC01" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err


class TestJsonOutput:
    def test_report_shape(self, capsys):
        code = main(["lint", str(PLANTED), "--baseline", "none", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["tool"] == "repro-lint"
        assert report["exit"] == 1
        assert report["files_scanned"] >= 5
        rules = {f["rule"] for f in report["findings"]}
        assert {"L001", "D001", "C001", "H001", "RC01"} <= rules
        first = report["findings"][0]
        assert {"rule", "path", "line", "col", "message", "key",
                "symbol"} <= set(first)

    def test_clean_json_exit_zero(self, capsys):
        code = main(["lint", str(CLEAN), "--baseline", "none", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["findings"] == []


class TestSelection:
    def test_select_narrows_to_one_rule(self, capsys):
        main(["lint", str(PLANTED), "--baseline", "none",
              "--json", "--select", "C001"])
        report = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in report["findings"]} == {"C001"}

    def test_select_accepts_checker_name(self, capsys):
        main(["lint", str(PLANTED), "--baseline", "none",
              "--json", "--select", "determinism"])
        report = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in report["findings"]} \
            == {"D001", "D002", "D003", "D004"}

    def test_ignore_drops_rules(self, capsys):
        main(["lint", str(PLANTED), "--baseline", "none",
              "--json", "--ignore", "layering,hooks"])
        report = json.loads(capsys.readouterr().out)
        rules = {f["rule"] for f in report["findings"]}
        assert not rules & {"L001", "L002", "H001"}
        assert "C001" in rules


class TestBaselineFlow:
    def test_write_then_apply_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(PLANTED), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", str(PLANTED),
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "baselined" in out

    def test_write_baseline_keeps_reviewed_reasons(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main(["lint", str(PLANTED), "--baseline", str(baseline),
              "--write-baseline"])
        data = json.loads(baseline.read_text())
        data["entries"][0]["reason"] = "reviewed: intentional"
        reviewed_key = data["entries"][0]["key"]
        baseline.write_text(json.dumps(data))
        main(["lint", str(PLANTED), "--baseline", str(baseline),
              "--write-baseline"])
        rewritten = json.loads(baseline.read_text())
        reasons = {e["key"]: e["reason"] for e in rewritten["entries"]}
        assert reasons[reviewed_key] == "reviewed: intentional"

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{broken")
        assert main(["lint", str(PLANTED),
                     "--baseline", str(baseline)]) == 2
        assert "not valid JSON" in capsys.readouterr().err


class TestExplain:
    def test_rule_table_printed(self, capsys):
        assert main(["lint", "--explain"]) == 0
        out = capsys.readouterr().out
        for rule in ("L001", "L002", "D001", "D002", "D003", "D004",
                     "C001", "H001", "RC01"):
            assert rule in out
