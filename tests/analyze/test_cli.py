"""The ``repro lint`` verb: exit codes, JSON output, selection, baseline."""

import json

from tests.analyze.conftest import CLEAN, PLANTED
from repro.cli import main


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(CLEAN), "--baseline", "none"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", str(PLANTED), "--baseline", "none"]) == 1
        out = capsys.readouterr().out
        assert "C001" in out and "RC01" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err


class TestJsonOutput:
    def test_report_shape(self, capsys):
        code = main(["lint", str(PLANTED), "--baseline", "none", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["tool"] == "repro-lint"
        assert report["exit"] == 1
        assert report["files_scanned"] >= 5
        rules = {f["rule"] for f in report["findings"]}
        assert {"L001", "D001", "C001", "H001", "RC01"} <= rules
        first = report["findings"][0]
        assert {"rule", "path", "line", "col", "message", "key",
                "symbol"} <= set(first)

    def test_clean_json_exit_zero(self, capsys):
        code = main(["lint", str(CLEAN), "--baseline", "none", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["findings"] == []


class TestSelection:
    def test_select_narrows_to_one_rule(self, capsys):
        main(["lint", str(PLANTED), "--baseline", "none",
              "--json", "--select", "C001"])
        report = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in report["findings"]} == {"C001"}

    def test_select_accepts_checker_name(self, capsys):
        main(["lint", str(PLANTED), "--baseline", "none",
              "--json", "--select", "determinism"])
        report = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in report["findings"]} \
            == {"D001", "D002", "D003", "D004"}

    def test_ignore_drops_rules(self, capsys):
        main(["lint", str(PLANTED), "--baseline", "none",
              "--json", "--ignore", "layering,hooks"])
        report = json.loads(capsys.readouterr().out)
        rules = {f["rule"] for f in report["findings"]}
        assert not rules & {"L001", "L002", "H001"}
        assert "C001" in rules


class TestBaselineFlow:
    def test_write_then_apply_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["lint", str(PLANTED), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        capsys.readouterr()
        assert main(["lint", str(PLANTED),
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "baselined" in out

    def test_write_baseline_keeps_reviewed_reasons(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main(["lint", str(PLANTED), "--baseline", str(baseline),
              "--write-baseline"])
        data = json.loads(baseline.read_text())
        data["entries"][0]["reason"] = "reviewed: intentional"
        reviewed_key = data["entries"][0]["key"]
        baseline.write_text(json.dumps(data))
        main(["lint", str(PLANTED), "--baseline", str(baseline),
              "--write-baseline"])
        rewritten = json.loads(baseline.read_text())
        reasons = {e["key"]: e["reason"] for e in rewritten["entries"]}
        assert reasons[reviewed_key] == "reviewed: intentional"

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{broken")
        assert main(["lint", str(PLANTED),
                     "--baseline", str(baseline)]) == 2
        assert "not valid JSON" in capsys.readouterr().err


class TestStaleBaseline:
    """--write-baseline prunes what stopped firing; --check-stale gates."""

    def _baseline_with_extras(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        main(["lint", str(PLANTED), "--baseline", str(baseline),
              "--write-baseline"])
        data = json.loads(baseline.read_text())
        # A key in a scanned module that no longer fires, and one for a
        # module this scan never sees.
        data["entries"].append(
            {"key": "D001::repro.kernel.counters_bad::ghost",
             "reason": "was real once"})
        data["entries"].append(
            {"key": "D001::repro.retired.module::keep",
             "reason": "reviewed: other tree"})
        baseline.write_text(json.dumps(data))
        return baseline

    def test_write_baseline_prunes_and_preserves(self, tmp_path, capsys):
        baseline = self._baseline_with_extras(tmp_path)
        capsys.readouterr()
        assert main(["lint", str(PLANTED), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        out = capsys.readouterr().out
        assert "1 stale pruned, 1 out-of-scope preserved" in out
        assert "pruned: D001::repro.kernel.counters_bad::ghost" in out
        keys = {e["key"]
                for e in json.loads(baseline.read_text())["entries"]}
        assert "D001::repro.kernel.counters_bad::ghost" not in keys
        assert "D001::repro.retired.module::keep" in keys

    def test_stale_entry_is_a_note_by_default(self, tmp_path, capsys):
        baseline = self._baseline_with_extras(tmp_path)
        capsys.readouterr()
        assert main(["lint", str(PLANTED),
                     "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "1 stale baseline entry" in out
        assert "D001::repro.kernel.counters_bad::ghost" in out
        # The out-of-scope key is not reported stale: its module was
        # never scanned, so staleness is undecidable.
        assert "repro.retired.module" not in out

    def test_check_stale_fails_the_run(self, tmp_path, capsys):
        baseline = self._baseline_with_extras(tmp_path)
        capsys.readouterr()
        assert main(["lint", str(PLANTED), "--baseline", str(baseline),
                     "--check-stale"]) == 1
        out = capsys.readouterr().out
        assert "--check-stale" in out and "--write-baseline" in out


class TestChangedMode:
    """--changed REF lints only changed modules + reverse importers."""

    def _patch_changed(self, monkeypatch, result):
        import repro.cli
        monkeypatch.setattr(repro.cli, "_git_changed_files",
                            lambda ref: result)

    def test_focus_walks_a_subset(self, monkeypatch, capsys):
        self._patch_changed(monkeypatch,
                            ["src/repro/machine/colengine.py"])
        code = main(["lint", "--changed", "HEAD", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["files_walked"] is not None
        assert 1 <= report["files_walked"] < report["files_scanned"]

    def test_focus_filters_findings_to_closure(self, monkeypatch, capsys):
        # Changing one planted fixture must not surface findings from
        # the other planted modules.
        self._patch_changed(
            monkeypatch,
            ["tests/analyze/fixtures/planted/repro/harness/spans_bad.py"])
        main(["lint", str(PLANTED), "--changed", "HEAD",
              "--baseline", "none", "--json"])
        report = json.loads(capsys.readouterr().out)
        rules = {f["rule"] for f in report["findings"]}
        assert rules == {"S001", "S002"}
        assert report["files_walked"] == 1

    def test_no_changes_short_circuits(self, monkeypatch, capsys):
        self._patch_changed(monkeypatch, [])
        assert main(["lint", "--changed", "HEAD"]) == 0
        assert "0 files changed" in capsys.readouterr().out

    def test_git_failure_exits_two(self, monkeypatch, capsys):
        self._patch_changed(monkeypatch, None)
        assert main(["lint", "--changed", "nosuchref"]) == 2
        assert "git could not diff" in capsys.readouterr().err

    def test_changed_rejects_write_baseline(self, tmp_path, capsys):
        assert main(["lint", "--changed", "HEAD", "--write-baseline",
                     "--baseline", str(tmp_path / "b.json")]) == 2
        assert "full scan" in capsys.readouterr().err


class TestExplain:
    def test_rule_table_printed(self, capsys):
        assert main(["lint", "--explain"]) == 0
        out = capsys.readouterr().out
        for rule in ("L001", "L002", "D001", "D002", "D003", "D004",
                     "C001", "C002", "C003", "H001", "RC01",
                     "A001", "A002", "A003", "S001", "S002",
                     "P001", "P002"):
            assert rule in out
