"""mypy gate over the strict packages (machine/kernel/core).

mypy is a CI-only dependency (see ``.github/workflows/ci.yml``); this
test self-skips where it is not installed so the tier-1 suite stays
runnable on a bare interpreter.
"""

import importlib.util
import subprocess
import sys

import pytest

from tests.analyze.conftest import REPO_ROOT

mypy_missing = importlib.util.find_spec("mypy") is None


@pytest.mark.skipif(mypy_missing, reason="mypy not installed")
def test_strict_packages_type_check():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, \
        f"mypy failed:\n{result.stdout}\n{result.stderr}"
