"""Baseline round-trip, staleness, and error handling."""

import json

import pytest

from tests.analyze.conftest import PLANTED, run_lint
from repro.analyze import Baseline, BaselineError, TODO_REASON


class TestRoundTrip:
    def test_save_load_apply_suppresses_everything(self, tmp_path):
        findings = run_lint(PLANTED)
        assert findings  # the fixtures must actually fire
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)

        loaded = Baseline.load(path)
        unsuppressed, suppressed, stale = loaded.apply(findings)
        assert unsuppressed == []
        assert len(suppressed) >= len(loaded.entries)
        assert stale == []

    def test_default_reason_is_todo_marker(self, tmp_path):
        findings = run_lint(PLANTED)
        baseline = Baseline.from_findings(findings)
        assert set(baseline.entries.values()) == {TODO_REASON}

    def test_entries_are_sorted_on_disk(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline(entries={"b::m::t": "r2", "a::m::t": "r1"}).save(path)
        data = json.loads(path.read_text())
        assert [e["key"] for e in data["entries"]] \
            == ["a::m::t", "b::m::t"]


class TestStaleness:
    def test_unused_entry_reported_as_stale(self):
        findings = run_lint(PLANTED)
        baseline = Baseline.from_findings(findings)
        baseline.entries["C001::repro.gone.module::old:token"] = "obsolete"
        unsuppressed, _, stale = baseline.apply(findings)
        assert unsuppressed == []
        assert stale == ["C001::repro.gone.module::old:token"]


class TestErrors:
    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError, match="not valid JSON"):
            Baseline.load(path)

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(BaselineError, match="unsupported format"):
            Baseline.load(path)

    def test_malformed_entry_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1,
                                    "entries": [{"reason": "no key"}]}))
        with pytest.raises(BaselineError, match="malformed entry"):
            Baseline.load(path)
