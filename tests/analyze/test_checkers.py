"""Every rule fires on its planted fixture and stays quiet on clean code.

The planted fixtures mirror the real package tree
(``fixtures/planted/repro/kernel/...`` resolves to ``repro.kernel.*``),
so the layer-, hook-, and counter-sensitive rules fire with the default
policy — exactly how the CI canary job consumes them.
"""

from tests.analyze.conftest import CLEAN, PLANTED, by_rule, run_lint


def _single(findings, rule):
    assert rule in findings, f"{rule} did not fire on its planted fixture"
    assert len(findings[rule]) == 1, findings[rule]
    return findings[rule][0]


class TestPlantedViolations:
    def test_l001_layer_inversion(self, planted_findings):
        finding = _single(planted_findings, "L001")
        assert finding.path.endswith("repro/machine/layering_bad.py")
        assert finding.line == 3
        assert "repro.harness.sweep" in finding.message
        assert "rank 50" in finding.message

    def test_l002_hot_tooling_import(self, planted_findings):
        finding = _single(planted_findings, "L002")
        assert finding.path.endswith("repro/machine/layering_bad.py")
        assert finding.line == 5
        assert "repro.observability.trace" in finding.message
        assert finding.key == ("L002::repro.machine.layering_bad::"
                               "import:repro.observability.trace")

    def test_d001_unseeded_random(self, planted_findings):
        finding = _single(planted_findings, "D001")
        assert finding.path.endswith("repro/kernel/determinism_bad.py")
        assert finding.line == 8
        assert "process-global RNG" in finding.message
        assert finding.symbol == "jitter"

    def test_d002_wall_clock(self, planted_findings):
        findings = planted_findings["D002"]
        assert sorted(f.line for f in findings) == [12, 16]
        by_line = {f.line: f for f in findings}
        assert "wall clock" in by_line[12].message
        assert "simulation package" in by_line[16].message

    def test_d003_id_ordering(self, planted_findings):
        finding = _single(planted_findings, "D003")
        assert finding.line == 20
        assert "key=id" in finding.message

    def test_d004_set_iteration(self, planted_findings):
        finding = _single(planted_findings, "D004")
        assert finding.line == 25
        assert "set order is nondeterministic" in finding.message

    def test_c001_foreign_counter_write(self, planted_findings):
        finding = _single(planted_findings, "C001")
        assert finding.path.endswith("repro/kernel/counters_bad.py")
        assert finding.line == 5
        assert "page_faults" in finding.message
        assert "Kernel" in finding.message

    def test_h001_missing_hook_pair(self, planted_findings):
        findings = planted_findings["H001"]
        assert len(findings) == 2  # faults AND sanitize both missing
        assert all(f.path.endswith("repro/kernel/vm.py") for f in findings)
        assert all(f.line == 9 for f in findings)
        assert all(f.symbol == "Kernel.munmap" for f in findings)
        kinds = {f.key.rsplit(":", 1)[-1] for f in findings}
        assert kinds == {"faults", "sanitize"}

    def test_rc01_foreign_private_write(self, planted_findings):
        finding = _single(planted_findings, "RC01")
        assert finding.path.endswith("repro/machine/races_bad.py")
        assert finding.line == 6
        assert "_sets" in finding.message
        assert finding.symbol == "Thief.poke"

    def test_a001_blocking_call_in_async_def(self, planted_findings):
        finding = _single(planted_findings, "A001")
        assert finding.path.endswith("repro/serve/async_bad.py")
        assert finding.line == 18
        assert finding.symbol == "Gateway.handle"
        assert finding.key == ("A001::repro.serve.async_bad::"
                               "Gateway.handle:time.sleep")

    def test_a002_transitive_blocking_reach(self, planted_findings):
        finding = _single(planted_findings, "A002")
        assert finding.path.endswith("repro/serve/async_bad.py")
        assert finding.line == 19
        assert "Gateway.handle -> _load_snapshot -> open" \
            in finding.message
        assert finding.key == ("A002::repro.serve.async_bad::"
                               "Gateway.handle:_load_snapshot")

    def test_a003_pool_without_initializer(self, planted_findings):
        finding = _single(planted_findings, "A003")
        assert finding.path.endswith("repro/serve/async_bad.py")
        assert finding.line == 22
        assert "initializer=" in finding.message
        assert finding.key == (
            "A003::repro.serve.async_bad::"
            "Gateway.boot:concurrent.futures.ProcessPoolExecutor")

    def test_s001_unbalanced_span(self, planted_findings):
        finding = _single(planted_findings, "S001")
        assert finding.path.endswith("repro/harness/spans_bad.py")
        assert finding.line == 11
        assert finding.symbol == "unbalanced"
        assert finding.key == ("S001::repro.harness.spans_bad::"
                               "unbalanced:harness.unbalanced")

    def test_s002_discarded_frame(self, planted_findings):
        finding = _single(planted_findings, "S002")
        assert finding.path.endswith("repro/harness/spans_bad.py")
        assert finding.line == 17
        assert finding.symbol == "discarded"
        assert finding.key == ("S002::repro.harness.spans_bad::"
                               "discarded:harness.discarded")

    def test_p001_missing_public_method(self, planted_findings):
        finding = _single(planted_findings, "P001")
        assert finding.path.endswith("repro/machine/colcache.py")
        assert finding.line == 8  # the drifting class's def line
        assert "'access'" in finding.message
        assert finding.key == ("P001::repro.machine.colcache::"
                               "ColumnarCacheLevel.access")

    def test_p002_signature_drift(self, planted_findings):
        finding = _single(planted_findings, "P002")
        assert finding.path.endswith("repro/machine/colcache.py")
        assert finding.line == 15  # the deviating method's def line
        assert "2 required" in finding.message
        assert "1 required" in finding.message
        assert finding.key == ("P002::repro.machine.colcache::"
                               "ColumnarCacheLevel.lookup")

    def test_c002_counter_never_incremented(self, planted_findings):
        finding = _single(planted_findings, "C002")
        assert finding.path.endswith("repro/kernel/vm.py")
        assert finding.line == 8  # the owning class's def line
        assert "pages_migrated" in finding.message
        assert finding.key == "C002::repro.kernel.vm::pages_migrated"

    def test_no_unexpected_rules(self, planted_findings):
        assert set(planted_findings) == {
            "L001", "L002", "D001", "D002", "D003", "D004",
            "C001", "C002", "H001", "RC01",
            "A001", "A002", "A003", "S001", "S002", "P001", "P002",
        }


class TestCleanFixture:
    def test_clean_tree_is_silent(self):
        assert run_lint(CLEAN) == []


class TestPolicyKnobs:
    def test_declared_mutator_is_exempt(self):
        from repro.analyze import LintConfig
        config = LintConfig()
        config.counter_mutators.append(
            "repro.kernel.counters_bad::bump")
        findings = by_rule(run_lint(PLANTED, config=config))
        assert "C001" not in findings

    def test_engine_function_is_exempt(self):
        from repro.analyze import LintConfig
        config = LintConfig()
        config.engine_functions.append(
            "repro.machine.races_bad::Thief.poke")
        findings = by_rule(run_lint(PLANTED, config=config))
        assert "RC01" not in findings

    def test_hook_site_removal_silences_h001(self):
        from repro.analyze import LintConfig
        config = LintConfig()
        config.hook_sites = [site for site in config.hook_sites
                             if site[1] != "Kernel.munmap"]
        findings = by_rule(run_lint(PLANTED, config=config))
        assert "H001" not in findings

    def test_async_package_scope_silences_a_rules(self):
        from repro.analyze import LintConfig
        config = LintConfig()
        config.async_packages = []
        findings = by_rule(run_lint(PLANTED, config=config))
        assert not {"A001", "A002", "A003"} & set(findings)

    def test_parity_group_removal_silences_p_rules(self):
        from repro.analyze import LintConfig
        config = LintConfig()
        config.parity_groups = {}
        findings = by_rule(run_lint(PLANTED, config=config))
        assert not {"P001", "P002"} & set(findings)

    def test_c003_stale_allowlist_entry(self):
        from repro.analyze import LintConfig
        config = LintConfig()
        config.counter_mutators.append("repro.kernel.vm::Kernel.ghost")
        findings = by_rule(run_lint(PLANTED, config=config))
        assert "C003" in findings
        finding = findings["C003"][0]
        assert finding.key == "C003::repro.kernel.vm::Kernel.ghost"
        assert "counter-mutators" in finding.message
        assert finding.path.endswith("repro/kernel/vm.py")
