"""The second-pass project index and call graph (repro.analyze.graph).

Modules are built from inline sources on synthetic ``repro/...`` paths
(``module_name_for`` anchors at the last ``repro`` component), so each
test states its whole program in one place.
"""

import ast
import textwrap
from pathlib import Path

from repro.analyze import LintConfig
from repro.analyze.engine import ModuleUnderAnalysis
from repro.analyze.graph import ParamShape, build_project, shape_of

ALPHA = """\
    from repro.kernel.beta import Widget

    class Base:
        def ping(self):
            return 1

    class Kernel(Base):
        def __init__(self):
            self.helper = Widget()

        def run(self):
            self.step()
            self.ping()
            local = Widget()
            local.spin()
            self.helper.spin()
            Widget().spin()
            util()

            def inner():
                util()

            inner()

        def step(self):
            pass

    def util():
        pass
    """

BETA = """\
    class Widget:
        def __init__(self):
            self.turns = 0

        def spin(self):
            self.turns += 1
    """

GAMMA = """\
    import repro.kernel.alpha
    """

DELTA = """\
    def standalone():
        pass
    """


def make_module(relpath: str, source: str) -> ModuleUnderAnalysis:
    tree = ast.parse(textwrap.dedent(source))
    return ModuleUnderAnalysis(Path(relpath), tree, relpath)


def make_project():
    modules = [
        make_module("src/repro/kernel/alpha.py", ALPHA),
        make_module("src/repro/kernel/beta.py", BETA),
        make_module("src/repro/harness/gamma.py", GAMMA),
        make_module("src/repro/harness/delta.py", DELTA),
    ]
    return build_project(modules, LintConfig())


def edges_from(project, fid):
    return {(e.callee, e.via) for e in project.graph.callees(fid)}


class TestProjectIndex:
    def test_functions_are_module_qualified(self):
        project = make_project()
        info = project.index.functions["repro.kernel.alpha::Kernel.run"]
        assert info.module == "repro.kernel.alpha"
        assert info.qualname == "Kernel.run"
        assert info.owner == "repro.kernel.alpha::Kernel"
        assert not info.is_async

    def test_nested_function_is_indexed(self):
        project = make_project()
        inner = project.index.functions[
            "repro.kernel.alpha::Kernel.run.inner"]
        assert inner.owner is None  # not a method

    def test_resolve_dotted_prefers_local_names(self):
        project = make_project()
        assert project.index.resolve_dotted(
            "repro.kernel.alpha", "util") \
            == ("func", "repro.kernel.alpha::util")
        assert project.index.resolve_dotted(
            "repro.kernel.alpha", "Kernel") \
            == ("class", "repro.kernel.alpha::Kernel")

    def test_resolve_dotted_walks_module_prefixes(self):
        project = make_project()
        assert project.index.resolve_dotted(
            "repro.harness.gamma", "repro.kernel.beta.Widget") \
            == ("class", "repro.kernel.beta::Widget")

    def test_resolve_dotted_unknown_is_none(self):
        project = make_project()
        assert project.index.resolve_dotted(
            "repro.kernel.alpha", "numpy.zeros") is None
        assert project.index.resolve_dotted(
            "repro.kernel.alpha", "ghost") is None

    def test_lookup_method_searches_project_bases(self):
        project = make_project()
        found = project.index.lookup_method(
            "repro.kernel.alpha::Kernel", "ping")
        assert found is not None
        assert found.fid == "repro.kernel.alpha::Base.ping"
        assert project.index.lookup_method(
            "repro.kernel.alpha::Kernel", "absent") is None

    def test_attr_types_pinned_from_init(self):
        project = make_project()
        kernel = project.index.classes["repro.kernel.alpha::Kernel"]
        assert kernel.attr_types == {
            "helper": "repro.kernel.beta::Widget"}

    def test_public_methods_exclude_dunders_and_private(self):
        project = make_project()
        widget = project.index.classes["repro.kernel.beta::Widget"]
        assert set(widget.public_methods()) == {"spin"}


class TestCallGraphEdges:
    def test_every_provable_edge_kind(self):
        project = make_project()
        run = edges_from(project, "repro.kernel.alpha::Kernel.run")
        assert ("repro.kernel.alpha::Kernel.step", "self") in run
        assert ("repro.kernel.alpha::Base.ping", "self") in run
        assert ("repro.kernel.beta::Widget.__init__",
                "constructor") in run
        assert ("repro.kernel.beta::Widget.spin", "local-var") in run
        assert ("repro.kernel.beta::Widget.spin", "attr") in run
        assert ("repro.kernel.beta::Widget.spin", "chain") in run
        assert ("repro.kernel.alpha::util", "direct") in run
        assert ("repro.kernel.alpha::Kernel.run.inner", "nested") in run

    def test_constructor_edge_from_init(self):
        project = make_project()
        init = edges_from(project, "repro.kernel.alpha::Kernel.__init__")
        assert ("repro.kernel.beta::Widget.__init__",
                "constructor") in init

    def test_no_edges_invented_for_unknown_receivers(self):
        project = make_project()
        callees = {e.callee for edges in project.graph.edges.values()
                   for e in edges}
        assert all(c.startswith("repro.") for c in callees)
        assert project.graph.callees("repro.harness.delta::standalone") \
            == []


class TestReverseImporters:
    def test_closure_follows_import_chain(self):
        project = make_project()
        closure = project.index.reverse_importers(["repro.kernel.beta"])
        assert closure == {"repro.kernel.beta", "repro.kernel.alpha",
                           "repro.harness.gamma"}

    def test_leaf_module_closes_over_itself(self):
        project = make_project()
        assert project.index.reverse_importers(["repro.harness.delta"]) \
            == {"repro.harness.delta"}

    def test_unknown_seed_is_ignored(self):
        project = make_project()
        assert project.index.reverse_importers(["repro.nowhere"]) == set()


class TestParamShape:
    def _shape(self, source, in_class=False):
        node = ast.parse(textwrap.dedent(source)).body[0]
        if in_class:
            node = node.body[0]
        return shape_of(node, in_class)

    def test_receiver_is_stripped_for_methods(self):
        shape = self._shape("""\
            class C:
                def m(self, a, b=1):
                    pass
            """, in_class=True)
        assert shape == ParamShape(required=1, optional=1, vararg=False,
                                   kwonly=(), kwarg=False)

    def test_staticmethod_keeps_first_parameter(self):
        shape = self._shape("""\
            class C:
                @staticmethod
                def m(a):
                    pass
            """, in_class=True)
        assert shape.required == 1

    def test_varargs_and_kwonly_recorded(self):
        shape = self._shape("def f(a, *rest, mode, **extra):\n    pass\n")
        assert shape == ParamShape(required=1, optional=0, vararg=True,
                                   kwonly=("mode",), kwarg=True)
        assert shape.describe() \
            == "(1 required, *args, kwonly=mode, **kwargs)"
