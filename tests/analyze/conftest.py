"""Shared paths and helpers for the static-analysis tests."""

from pathlib import Path
from typing import Dict, List

import pytest

from repro.analyze import Analyzer, Finding, LintConfig, make_checkers

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"
PLANTED = FIXTURES / "planted"
CLEAN = FIXTURES / "clean"


def run_lint(*paths: Path, config: LintConfig = None) -> List[Finding]:
    analyzer = Analyzer(make_checkers(), config=config or LintConfig())
    return analyzer.run(paths).sorted()


def by_rule(findings: List[Finding]) -> Dict[str, List[Finding]]:
    grouped: Dict[str, List[Finding]] = {}
    for finding in findings:
        grouped.setdefault(finding.rule, []).append(finding)
    return grouped


@pytest.fixture
def planted_findings() -> Dict[str, List[Finding]]:
    return by_rule(run_lint(PLANTED))
