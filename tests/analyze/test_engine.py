"""Engine mechanics: module naming, aliases, scopes, parse errors."""

from pathlib import Path

from repro.analyze import Analyzer, LintConfig, make_checkers, module_name_for
from repro.analyze.engine import PARSE_ERROR_RULE


def _lint_source(tmp_path: Path, relpath: str, source: str):
    """Write ``source`` at ``tmp_path/relpath`` and lint just that file."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    analyzer = Analyzer(make_checkers(), config=LintConfig())
    return analyzer.run_file(path)


class TestModuleNaming:
    def test_anchors_at_last_repro_component(self):
        assert module_name_for(Path("src/repro/machine/numa.py")) \
            == "repro.machine.numa"
        assert module_name_for(
            Path("tests/analyze/fixtures/planted/repro/kernel/vm.py")) \
            == "repro.kernel.vm"

    def test_init_resolves_to_package(self):
        assert module_name_for(Path("src/repro/machine/__init__.py")) \
            == "repro.machine"

    def test_non_repro_path_falls_back_to_stem(self):
        assert module_name_for(Path("scripts/helper.py")) == "helper"


class TestAliasResolution:
    def test_import_as_alias_still_detected(self, tmp_path):
        findings = _lint_source(tmp_path, "repro/kernel/mod.py",
                                "import random as rnd\n"
                                "x = rnd.random()\n")
        assert [f.rule for f in findings] == ["D001"]

    def test_from_import_resolved(self, tmp_path):
        findings = _lint_source(tmp_path, "repro/kernel/mod.py",
                                "from time import perf_counter\n"
                                "t = perf_counter()\n")
        assert [f.rule for f in findings] == ["D002"]

    def test_distinct_name_not_confused_with_module(self, tmp_path):
        # `rng.random()` must not be mistaken for `random.random()`.
        findings = _lint_source(tmp_path, "repro/kernel/mod.py",
                                "import random\n"
                                "rng = random.Random(7)\n"
                                "x = rng.random()\n")
        assert findings == []


class TestScopes:
    def test_self_alias_allows_owner_mutation(self, tmp_path):
        findings = _lint_source(
            tmp_path, "repro/machine/mod.py",
            "class CacheLevel:\n"
            "    def record(self):\n"
            "        stats = self.stats\n"
            "        stats.hits += 1\n")
        assert findings == []

    def test_foreign_counter_write_flagged(self, tmp_path):
        findings = _lint_source(
            tmp_path, "repro/machine/mod.py",
            "class Walker:\n"
            "    def record(self, level):\n"
            "        level.hits += 1\n")
        assert [f.rule for f in findings] == ["C001"]
        assert findings[0].symbol == "Walker.record"

    def test_function_level_import_exempt_from_layering(self, tmp_path):
        findings = _lint_source(
            tmp_path, "repro/machine/mod.py",
            "def lazy():\n"
            "    from repro.harness.sweep import run_many\n"
            "    return run_many\n")
        assert findings == []

    def test_type_checking_import_exempt(self, tmp_path):
        findings = _lint_source(
            tmp_path, "repro/machine/mod.py",
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.harness.sweep import run_many\n")
        assert findings == []


class TestParseErrors:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        findings = _lint_source(tmp_path, "repro/kernel/broken.py",
                                "def incomplete(:\n")
        assert len(findings) == 1
        assert findings[0].rule == PARSE_ERROR_RULE
        assert "cannot analyze" in findings[0].message


class TestStableKeys:
    def test_key_has_no_line_number(self, tmp_path):
        first = _lint_source(tmp_path, "repro/kernel/a.py",
                             "import time\n"
                             "t = time.time()\n")
        shifted = _lint_source(tmp_path, "repro/kernel/a.py",
                               "# a comment shifts every line\n"
                               "import time\n"
                               "t = time.time()\n")
        assert first[0].key == shifted[0].key
        assert first[0].line != shifted[0].line
