"""The linter self-hosted over src/repro: clean, pinned, and fast."""

import time

from tests.analyze.conftest import REPO_ROOT
from repro.analyze import (Analyzer, Baseline, LintConfig, load_config,
                           make_checkers)

SRC = REPO_ROOT / "src" / "repro"


def _self_host():
    config = load_config(REPO_ROOT / "pyproject.toml")
    analyzer = Analyzer(make_checkers(), config=config)
    report = analyzer.run([SRC])
    baseline = Baseline.load(REPO_ROOT / config.baseline)
    return report, baseline


class TestSelfHost:
    def test_tree_is_clean_under_committed_baseline(self):
        report, baseline = _self_host()
        unsuppressed, _, stale = baseline.apply(report.sorted())
        assert unsuppressed == [], \
            "\n".join(f.render() for f in unsuppressed)
        assert stale == [], f"stale baseline entries: {stale}"

    def test_every_baseline_entry_has_a_real_reason(self):
        _, baseline = _self_host()
        for key, reason in baseline.entries.items():
            assert reason and not reason.startswith("TODO"), \
                f"{key} lacks a justification"

    def test_whole_tree_scan_is_fast(self):
        start = time.perf_counter()
        report, _ = _self_host()
        elapsed = time.perf_counter() - start
        assert report.files_scanned > 50
        assert elapsed < 5.0, f"lint took {elapsed:.2f}s (budget 5s)"

    def test_scans_every_python_file_once(self):
        report, _ = _self_host()
        expected = len([p for p in SRC.rglob("*.py")
                        if "__pycache__" not in p.parts])
        assert report.files_scanned == expected


class TestPolicyPin:
    """The committed pyproject block must equal the built-in defaults.

    ``load_config`` falls back to the built-ins on pre-3.11 interpreters
    (no tomllib), so if the two drift the effective policy would depend
    on the Python version running the linter.
    """

    def test_pyproject_policy_matches_builtin_defaults(self):
        loaded = load_config(REPO_ROOT / "pyproject.toml")
        default = LintConfig()
        assert loaded.layers == default.layers
        assert list(loaded.crosscutting) == list(default.crosscutting)
        assert list(loaded.hot) == list(default.hot)
        assert loaded.counters == default.counters
        assert list(loaded.counter_mutators) \
            == list(default.counter_mutators)
        assert list(loaded.engine_functions) \
            == list(default.engine_functions)
        assert loaded.hook_sites == default.hook_sites
        assert loaded.paths == default.paths
        assert loaded.baseline == default.baseline
        assert list(loaded.async_packages) == list(default.async_packages)
        assert loaded.parity_groups == default.parity_groups
        assert list(loaded.test_paths) == list(default.test_paths)
        assert list(loaded.test_select) == list(default.test_select)
        assert list(loaded.exclude) == list(default.exclude)

    def test_parity_groups_name_real_classes(self):
        """Every parity-group member must resolve in the real tree —
        a renamed engine class would otherwise drop out of the group
        and silently lose parity enforcement (P-rules skip groups with
        fewer than two resolved members).
        """
        from pathlib import Path

        from repro.analyze.graph import build_project

        config = load_config(REPO_ROOT / "pyproject.toml")
        analyzer = Analyzer(make_checkers(), config=config)
        modules = []
        for file in analyzer.collect([SRC]):
            module, error = analyzer._parse(file)
            assert error is None, error
            modules.append(module)
        project = build_project(modules, config)
        for group, refs in config.parity_groups.items():
            for ref in refs:
                assert project.index.resolve_class(ref) is not None, \
                    f"parity group '{group}' ref does not resolve: {ref}"

    def test_deleting_an_engine_method_fails_lint(self, tmp_path):
        """Acceptance proof for the parity rules: strip one public
        method from the *real* ``CacheLevel`` and lint the pair — P001
        must flag the drift.  This is the regression the P-rules exist
        to catch: an engine change that silently narrows the shared
        surface the registry promises.
        """
        import ast

        source_path = SRC / "machine" / "cache.py"
        lines = source_path.read_text().splitlines(keepends=True)
        tree = ast.parse("".join(lines))
        victim = None
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == "CacheLevel":
                victim = next(item for item in node.body
                              if isinstance(item, ast.FunctionDef)
                              and item.name == "access")
        assert victim is not None
        del lines[victim.lineno - 1:victim.end_lineno]

        mirror = tmp_path / "repro" / "machine"
        mirror.mkdir(parents=True)
        (mirror / "cache.py").write_text("".join(lines))
        (mirror / "colcache.py").write_text(
            (SRC / "machine" / "colcache.py").read_text())

        analyzer = Analyzer(make_checkers(), config=LintConfig())
        report = analyzer.run([mirror / "cache.py",
                               mirror / "colcache.py"])
        keys = {f.key for f in report.findings if f.rule == "P001"}
        assert "P001::repro.machine.cache::CacheLevel.access" in keys

    def test_hook_sites_name_real_functions(self):
        """Guard against config rot: every registered hook site must
        still exist in the scanned tree (H001 skips absent functions,
        so a renamed operation would otherwise silently lose coverage).
        """
        import ast

        config = load_config(REPO_ROOT / "pyproject.toml")
        for module, qualname, _hooks in config.hook_sites:
            relpath = module.replace(".", "/") + ".py"
            path = REPO_ROOT / "src" / relpath
            assert path.is_file(), f"hook site module missing: {module}"
            tree = ast.parse(path.read_text())
            names = set()
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef):
                    for item in node.body:
                        if isinstance(item, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                            names.add(f"{node.name}.{item.name}")
            assert qualname in names, \
                f"hook site {module}::{qualname} not found"
