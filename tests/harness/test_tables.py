"""Tests for the ASCII table renderers."""

import pytest

from repro.harness.tables import format_table, render_series


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert len({len(line) for line in lines}) == 1

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table")

    def test_floats_formatted(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.23" in text
        assert "1.2345" not in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_nan_cells_render_as_err(self):
        text = format_table(["bench", "rate"],
                            [["fop", float("nan")], ["xalan", 1.5]])
        assert "ERR" in text
        assert "nan" not in text
        assert "1.50" in text


class TestRenderSeries:
    def test_series_as_rows(self):
        text = render_series({"KG-N": {"PR": 0.5, "CC": 0.4},
                              "KG-W": {"PR": 0.2, "CC": 0.1}})
        assert "KG-N" in text and "PR" in text and "0.50" in text

    def test_missing_values_dashed(self):
        text = render_series({"a": {"x": 1.0}, "b": {"y": 2.0}})
        assert "-" in text

    def test_value_format(self):
        text = render_series({"a": {"x": 123.456}}, value_format="{:.0f}")
        assert "123" in text and "123.46" not in text

    def test_nan_values_render_as_err(self):
        text = render_series({"a": {"x": float("nan"), "y": 2.0}})
        assert "ERR" in text and "2.00" in text
