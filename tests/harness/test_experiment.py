"""Tests for the caching experiment runner."""

import pytest

from repro.core.platform import EmulationMode
from repro.harness.experiment import ExperimentRunner, RunKey


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestCaching:
    def test_identical_runs_are_cached(self, runner):
        first = runner.run("fop", "PCM-Only")
        count = runner.runs_executed
        second = runner.run("fop", "PCM-Only")
        assert first is second
        assert runner.runs_executed == count

    def test_different_collector_not_cached(self, runner):
        runner.run("fop", "PCM-Only")
        count = runner.runs_executed
        runner.run("fop", "KG-N")
        assert runner.runs_executed == count + 1

    def test_mode_is_part_of_key(self, runner):
        runner.run("fop", "PCM-Only")
        count = runner.runs_executed
        runner.run("fop", "PCM-Only", mode=EmulationMode.SIMULATION)
        assert runner.runs_executed == count + 1

    def test_key_equality(self):
        a = RunKey("x", "KG-N", 1, "default", EmulationMode.EMULATION)
        b = RunKey("x", "KG-N", 1, "default", EmulationMode.EMULATION)
        assert a == b and hash(a) == hash(b)


class TestHelpers:
    def test_pcm_writes_shortcut(self, runner):
        assert runner.pcm_writes("fop") == \
            runner.run("fop").pcm_write_lines

    def test_write_rate_shortcut(self, runner):
        assert runner.write_rate("fop") == \
            runner.run("fop").pcm_write_rate_mbs

    def test_suite_average(self, runner):
        value = runner.suite_average_writes(["fop"])
        assert value == runner.pcm_writes("fop")
