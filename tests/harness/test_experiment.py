"""Tests for the caching experiment runner."""

import pytest

from repro.core.platform import EmulationMode
from repro.harness.experiment import ExperimentRunner, RunKey


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestCaching:
    def test_identical_runs_are_cached(self, runner):
        first = runner.run("fop", "PCM-Only")
        count = runner.executions
        hits = runner.cache_hits
        second = runner.run("fop", "PCM-Only")
        assert first is second
        assert runner.executions == count
        assert runner.cache_hits == hits + 1

    def test_different_collector_not_cached(self, runner):
        runner.run("fop", "PCM-Only")
        count = runner.executions
        runner.run("fop", "KG-N")
        assert runner.executions == count + 1

    def test_mode_is_part_of_key(self, runner):
        runner.run("fop", "PCM-Only")
        count = runner.executions
        runner.run("fop", "PCM-Only", mode=EmulationMode.SIMULATION)
        assert runner.executions == count + 1

    def test_runs_executed_is_deprecated_alias(self, runner):
        runner.run("fop", "PCM-Only")
        with pytest.deprecated_call():
            value = runner.runs_executed
        assert value == runner.executions

    def test_cache_hit_is_not_an_execution(self):
        fresh = ExperimentRunner()
        assert fresh.executions == 0 and fresh.cache_hits == 0
        fresh.run("fop", "PCM-Only")
        fresh.run("fop", "PCM-Only")
        fresh.run("fop", "PCM-Only")
        assert fresh.executions == 1
        assert fresh.cache_hits == 2

    def test_registry_counts_cache_traffic(self, runner):
        from repro.observability.metrics import METRICS

        runner.run("fop", "PCM-Only")  # ensure cached
        hits_before = METRICS.value("runner.cache.hits")
        runner.run("fop", "PCM-Only")
        assert METRICS.value("runner.cache.hits") == hits_before + 1

    def test_fresh_run_emits_runner_span(self):
        from repro.observability.trace import TRACER

        with TRACER.capture() as tracer:
            fresh = ExperimentRunner()
            fresh.run("fop", "PCM-Only")
            fresh.run("fop", "PCM-Only")
        spans = tracer.spans("runner.run")
        assert len(spans) == 1
        assert spans[0]["attrs"]["benchmark"] == "fop"
        assert len(tracer.events("runner.cache_hit")) == 1

    def test_key_equality(self):
        a = RunKey("x", "KG-N", 1, "default", EmulationMode.EMULATION)
        b = RunKey("x", "KG-N", 1, "default", EmulationMode.EMULATION)
        assert a == b and hash(a) == hash(b)


class TestHelpers:
    def test_pcm_writes_shortcut(self, runner):
        assert runner.pcm_writes("fop") == \
            runner.run("fop").pcm_write_lines

    def test_write_rate_shortcut(self, runner):
        assert runner.write_rate("fop") == \
            runner.run("fop").pcm_write_rate_mbs

    def test_suite_average(self, runner):
        value = runner.suite_average_writes(["fop"])
        assert value == runner.pcm_writes("fop")
