"""Tests for the metric helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.harness.metrics import (
    average,
    geomean,
    normalize,
    percent_reduction,
)


class TestAverage:
    def test_mean(self):
        assert average([1, 2, 3]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average([])


class TestGeomean:
    def test_value(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1, 0])

    @given(st.lists(st.floats(0.1, 100), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        result = geomean(values)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9


class TestPercentReduction:
    def test_paper_number(self):
        assert percent_reduction(100, 38) == pytest.approx(62.0)

    def test_increase_is_negative(self):
        assert percent_reduction(100, 150) == pytest.approx(-50.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            percent_reduction(0, 10)


class TestNormalize:
    def test_baseline_becomes_one(self):
        result = normalize({"a": 10, "b": 5}, "a")
        assert result == {"a": 1.0, "b": 0.5}

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalize({"a": 0, "b": 5}, "a")
