"""Serial-path chaos coverage for ``ExperimentRunner.sweep``.

The pool path has a chaos suite (``tests/faults/test_chaos.py``); this
file gives the *serial* paths the same treatment — explicit
``max_workers=1`` sweeps, single-fresh-key serial execution, and the
pool-creation-failure degradation — under in-process fault injection,
retries, and the (pool-only) timeout knob.
"""

import pytest

from repro.core.platform import EmulationMode
from repro.faults import FAULTS, FaultPlan
from repro.harness.experiment import (
    ExperimentRunner,
    RetryPolicy,
    RunKey,
    SweepReport,
)
from repro.observability.metrics import METRICS


def _key(benchmark="fop", collector="PCM-Only", instances=1):
    return RunKey(benchmark, collector, instances, "default",
                  EmulationMode.EMULATION)


THREE = [_key("fop", c) for c in ("PCM-Only", "KG-N", "KG-W")]


def _values(results):
    """Deterministic fields only (host_seconds is wall-clock noise)."""
    return [(r.pcm_write_lines, r.dram_write_lines, r.qpi_crossings,
             r.per_tag_pcm_writes, r.elapsed_seconds) for r in results]


@pytest.fixture(autouse=True)
def pristine():
    FAULTS.uninstall()
    METRICS.reset()
    yield
    FAULTS.uninstall()
    METRICS.reset()


class TestSerialUnderFaults:
    def test_transient_fault_is_retried_in_process(self):
        # One GC-safepoint crash on the first arrival: attempt 1 dies;
        # by attempt 2 the arrival counter is past the armed window, so
        # the retry completes.
        plan = FaultPlan().add("runtime.gc", at=1, times=1)
        runner = ExperimentRunner()
        with FAULTS.installed(plan):
            report = runner.sweep([_key()], max_workers=1,
                                  retry=RetryPolicy(max_attempts=3))
        assert report.ok
        assert report.outcomes[0].attempts == 2
        assert METRICS.value("runner.retries") == 1

    def test_persistent_fault_yields_serial_failure_record(self):
        plan = FaultPlan().add("runtime.gc", at=1, times=-1)
        runner = ExperimentRunner()
        with FAULTS.installed(plan):
            report = runner.sweep([_key()], max_workers=1,
                                  retry=RetryPolicy(max_attempts=2))
        assert not report.ok
        failure = report.outcomes[0].failure
        assert failure is not None
        assert failure.worker == "serial"
        assert failure.attempts == 2

    def test_faulted_sibling_does_not_poison_serial_sweep(self):
        # A one-shot fault lands in key 1's first GC round; keys 2..3
        # must still complete first-try while key 1 retries.
        plan = FaultPlan().add("runtime.gc", at=1, times=1)
        runner = ExperimentRunner()
        with FAULTS.installed(plan):
            report = runner.sweep(THREE, max_workers=1,
                                  retry=RetryPolicy(max_attempts=3))
        assert report.ok
        assert [o.key for o in report.outcomes] == THREE
        assert report.outcomes[0].attempts == 2
        assert report.outcomes[1].attempts == 1
        assert report.outcomes[2].attempts == 1

    def test_serial_results_match_unfaulted_reference(self):
        plan = FaultPlan().add("runtime.gc", at=1, times=1)
        faulted = ExperimentRunner()
        with FAULTS.installed(plan):
            report = faulted.sweep([_key()], max_workers=1,
                                   retry=RetryPolicy(max_attempts=3))
        reference = ExperimentRunner().sweep([_key()], max_workers=1)
        assert _values([report.outcomes[0].result]) \
            == _values([reference.outcomes[0].result])


class TestSerialTimeoutSemantics:
    def test_timeout_is_ignored_on_the_serial_path(self):
        # The per-run timeout is a pool-mode rescue (a future that
        # never completes); in-process there is nothing to interrupt,
        # so even an absurdly small budget must not fail the run.
        runner = ExperimentRunner()
        report = runner.sweep([_key()], max_workers=1, timeout=1e-9)
        assert report.ok
        assert report.outcomes[0].failure is None

    def test_timeout_with_retries_and_faults_still_serial_safe(self):
        plan = FaultPlan().add("runtime.gc", at=1, times=1)
        runner = ExperimentRunner()
        with FAULTS.installed(plan):
            report = runner.sweep([_key()], max_workers=1, timeout=1e-9,
                                  retry=RetryPolicy(max_attempts=3))
        assert report.ok
        assert report.outcomes[0].attempts == 2


class TestPoolCollapseDegradation:
    def test_pool_creation_failure_degrades_to_serial(self, monkeypatch):
        def explode(*args, **kwargs):
            raise OSError("no more processes")

        runner = ExperimentRunner()
        monkeypatch.setattr(runner, "_pool_attempts", explode)
        report = runner.sweep(THREE, max_workers=4)
        assert isinstance(report, SweepReport)
        assert report.ok
        assert [o.key for o in report.outcomes] == THREE
        assert METRICS.value("runner.pool_degraded") >= 1

    def test_degraded_serial_run_still_honours_faults(self, monkeypatch):
        def explode(*args, **kwargs):
            raise OSError("no more processes")

        runner = ExperimentRunner()
        monkeypatch.setattr(runner, "_pool_attempts", explode)
        plan = FaultPlan().add("runtime.gc", at=1, times=-1)
        with FAULTS.installed(plan):
            report = runner.sweep([_key()], max_workers=4,
                                  retry=RetryPolicy(max_attempts=2))
        assert not report.ok
        assert report.outcomes[0].failure.worker == "serial"

    def test_degraded_results_match_pool_reference(self, monkeypatch):
        degraded = ExperimentRunner()
        monkeypatch.setattr(
            degraded, "_pool_attempts",
            lambda *a, **k: (_ for _ in ()).throw(OSError("boom")))
        report = degraded.sweep(THREE, max_workers=4)
        reference = ExperimentRunner().sweep(THREE, max_workers=1)
        assert _values([o.result for o in report.outcomes]) \
            == _values([o.result for o in reference.outcomes])
