"""Parallel experiment fan-out: determinism, caching, metric merge."""

import pytest

from repro.core.platform import EmulationMode
from repro.harness.experiment import ExperimentRunner, RunKey
from repro.observability.metrics import METRICS, MetricsRegistry


def _key(benchmark="fop", collector="PCM-Only", instances=1):
    return RunKey(benchmark, collector, instances, "default",
                  EmulationMode.EMULATION)


@pytest.fixture(autouse=True)
def clean_registry():
    METRICS.reset()
    yield
    METRICS.reset()


def _values(results):
    return [(r.pcm_write_lines, r.dram_write_lines, r.qpi_crossings,
             r.per_tag_pcm_writes, r.elapsed_seconds) for r in results]


class TestRunMany:
    KEYS = [_key("fop", "PCM-Only"), _key("fop", "KG-N"),
            _key("fop", "PCM-Only")]  # deliberate duplicate

    def test_parallel_matches_serial_bit_for_bit(self):
        serial = ExperimentRunner().run_many(self.KEYS, max_workers=1)
        METRICS.reset()
        parallel = ExperimentRunner().run_many(self.KEYS, max_workers=2)
        assert _values(parallel) == _values(serial)

    def test_results_come_back_in_input_order(self):
        results = ExperimentRunner().run_many(self.KEYS, max_workers=2)
        assert [r.collector for r in results] == ["PCM-Only", "KG-N",
                                                  "PCM-Only"]

    def test_duplicates_execute_once_and_count_as_hits(self):
        runner = ExperimentRunner()
        results = runner.run_many(self.KEYS, max_workers=2)
        assert runner.executions == 2
        assert runner.cache_hits == 1
        assert results[0] is results[2]

    def test_cached_keys_are_served_without_reexecution(self):
        runner = ExperimentRunner()
        runner.run_many(self.KEYS, max_workers=2)
        executions = runner.executions
        again = runner.run_many(self.KEYS, max_workers=2)
        assert runner.executions == executions
        assert _values(again) == _values(runner.run_many(self.KEYS))

    def test_worker_metrics_merge_into_parent_registry(self):
        ExperimentRunner().run_many([_key("fop", "PCM-Only"),
                                     _key("fop", "KG-N")], max_workers=2)
        serial_snapshot = {
            name: summary
            for name, summary in METRICS.as_dict().items()
            if "seconds" not in name}
        METRICS.reset()
        runner = ExperimentRunner()
        runner.run(_key("fop", "PCM-Only").benchmark, "PCM-Only")
        runner.run(_key("fop", "KG-N").benchmark, "KG-N")
        reference = {
            name: summary
            for name, summary in METRICS.as_dict().items()
            if "seconds" not in name}
        assert serial_snapshot == reference


class TestMetricsMerge:
    def test_counters_add_and_gauges_take_latest(self):
        source = MetricsRegistry()
        source.inc("runs", 3)
        source.set("occupancy", 7)
        target = MetricsRegistry()
        target.inc("runs", 2)
        target.set("occupancy", 1)
        target.merge(source.as_dict())
        assert target.value("runs") == 5
        assert target.value("occupancy") == 7

    def test_histograms_combine_summaries(self):
        source = MetricsRegistry()
        for value in (1.0, 5.0):
            source.observe("pause", value)
        target = MetricsRegistry()
        target.observe("pause", 3.0)
        target.merge(source.as_dict())
        histogram = target.get("pause")
        assert histogram.count == 3
        assert histogram.total == 9.0
        assert histogram.min == 1.0
        assert histogram.max == 5.0

    def test_empty_histogram_snapshots_are_skipped(self):
        source = MetricsRegistry()
        source.histogram("pause")  # created but never observed
        target = MetricsRegistry()
        target.merge(source.as_dict())
        metric = target.get("pause")
        assert metric is None or metric.count == 0

    def test_unknown_kind_raises(self):
        target = MetricsRegistry()
        with pytest.raises(ValueError):
            target.merge({"weird": {"kind": "exotic", "value": 1}})

    def test_merge_is_associative_over_disjoint_snapshots(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("left", 1)
        b.inc("right", 2)
        target = MetricsRegistry()
        target.merge(a.as_dict())
        target.merge(b.as_dict())
        assert target.value("left") == 1
        assert target.value("right") == 2


class TestStableSeeding:
    def test_benchmark_seeds_do_not_use_randomized_hash(self):
        """Workload seeds must be identical in every interpreter.

        ``hash(str)`` changes with PYTHONHASHSEED, which made simulated
        counters differ between invocations and between a parent and
        spawned pool workers.
        """
        import subprocess
        import sys

        script = ("from repro.workloads.registry import benchmark_factory;"
                  "print(benchmark_factory('fop')(0).seed,"
                  "      benchmark_factory('pr')(0).seed)")
        seeds = {
            subprocess.run(
                [sys.executable, "-c", script],
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": hash_seed},
                capture_output=True, text=True, check=True,
                cwd=__file__.rsplit("/tests/", 1)[0]).stdout
            for hash_seed in ("1", "2", "random")}
        assert len(seeds) == 1, f"seeds vary with PYTHONHASHSEED: {seeds}"
