"""The sweep checkpoint store: round-trips, torn writes, schema guard."""

import json
import os

import pytest

from repro.core.platform import EmulationMode, MeasurementResult
from repro.harness.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointMismatch,
    SweepCheckpoint,
    repair_jsonl_tail,
    result_from_dict,
    result_to_dict,
    salvage_jsonl,
)
from repro.harness.experiment import RunKey
from repro.runtime.jvm import RuntimeStats


def _result(benchmark="fop", collector="KG-N") -> MeasurementResult:
    stats = RuntimeStats(minor_gcs=3, full_gcs=1, bytes_allocated=4096,
                         mutator_cycles=1000, gc_cycles=200)
    stats.pauses = [10, 25, 40]
    return MeasurementResult(
        benchmark=benchmark, collector=collector,
        mode=EmulationMode.EMULATION, instances=1,
        pcm_write_lines=1234, dram_write_lines=5678,
        elapsed_seconds=0.25,
        per_tag_pcm_writes={"nursery": 100, "large.pcm": 34},
        per_tag_dram_writes={"mature.dram": 99},
        instance_stats=[stats],
        monitor_rates_mbs=[10.0, 12.5],
        wear_efficiency=0.8, wear_imbalance=3.5,
        node_counters=[{"node": 0, "read_lines": 5, "write_lines": 7}],
        llc_stats=[{"socket": 0, "hits": 11, "misses": 3}],
        qpi_crossings=42, host_seconds=1.5)


def _key(benchmark="fop", collector="KG-N") -> RunKey:
    return RunKey(benchmark, collector, 1, "default",
                  EmulationMode.EMULATION)


class TestResultRoundTrip:
    def test_lossless(self):
        original = _result()
        clone = result_from_dict(
            json.loads(json.dumps(result_to_dict(original))))
        assert clone == original

    def test_pauses_survive(self):
        clone = result_from_dict(result_to_dict(_result()))
        assert clone.instance_stats[0].pauses == [10, 25, 40]


class TestCheckpointStore:
    def test_append_then_load(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = SweepCheckpoint(path)
        store.append(_key(), _result(), {"m": {"kind": "counter",
                                              "value": 3}})
        assert store.appended == 1
        restored = SweepCheckpoint(path).load()
        result, metrics = restored[_key()]
        assert result == _result()
        assert metrics == {"m": {"kind": "counter", "value": 3}}

    def test_missing_file_loads_empty(self, tmp_path):
        assert SweepCheckpoint(str(tmp_path / "absent.jsonl")).load() == {}

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = SweepCheckpoint(path)
        store.append(_key(), _result())
        with open(path, "a", encoding="utf-8") as handle:
            # A record cut short by a kill mid-write.
            handle.write('{"schema": "' + CHECKPOINT_SCHEMA + '", "key": {')
        restored = SweepCheckpoint(path).load()
        assert list(restored) == [_key()]

    def test_foreign_schema_records_are_ignored(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"schema": "something/else"}) + "\n")
        assert SweepCheckpoint(path).load() == {}

    def test_later_records_win(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = SweepCheckpoint(path)
        store.append(_key(), _result())
        newer = _result()
        newer.pcm_write_lines = 9999
        store.append(_key(), newer)
        result, _ = SweepCheckpoint(path).load()[_key()]
        assert result.pcm_write_lines == 9999

    def test_truncate_discards_history(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = SweepCheckpoint(path)
        store.append(_key(), _result())
        store.truncate()
        assert SweepCheckpoint(path).load() == {}


class TestHeaderStamp:
    """Checkpoints record the engine/placement that produced them; a
    resume under a different configuration must fail loudly instead of
    merging incomparable counters."""

    def test_stamp_round_trips(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = SweepCheckpoint(path, engine="columnar",
                                placement="migrate")
        store.append(_key(), _result())
        loader = SweepCheckpoint(path, engine="columnar",
                                 placement="migrate")
        assert list(loader.load()) == [_key()]

    def test_engine_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        SweepCheckpoint(path, engine="columnar",
                        placement="static").append(_key(), _result())
        with pytest.raises(CheckpointMismatch, match="engine"):
            SweepCheckpoint(path, engine="batched",
                            placement="static").load()

    def test_placement_mismatch_raises(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        SweepCheckpoint(path, engine="batched",
                        placement="migrate").append(_key(), _result())
        with pytest.raises(CheckpointMismatch, match="placement"):
            SweepCheckpoint(path, engine="batched",
                            placement="static").load()

    def test_unstamped_loader_accepts_any_header(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        SweepCheckpoint(path, engine="columnar",
                        placement="migrate").append(_key(), _result())
        assert list(SweepCheckpoint(path).load()) == [_key()]

    def test_headerless_legacy_file_still_loads(self, tmp_path):
        # Files written before the stamp existed carry no header
        # record; a stamped loader must accept them (nothing to
        # contradict), not invent a mismatch.
        path = str(tmp_path / "ckpt.jsonl")
        SweepCheckpoint(path).append(_key(), _result())
        loader = SweepCheckpoint(path, engine="batched",
                                 placement="static")
        assert list(loader.load()) == [_key()]

    def test_truncate_restamps(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = SweepCheckpoint(path, engine="batched",
                                placement="interleave")
        store.append(_key(), _result())
        store.truncate()
        with pytest.raises(CheckpointMismatch):
            SweepCheckpoint(path, engine="batched",
                            placement="static").load()

    def test_key_placement_round_trips(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        key = RunKey("fop", "KG-N", 1, "default",
                     EmulationMode.EMULATION, placement="migrate")
        store = SweepCheckpoint(path)
        store.append(key, _result())
        restored = SweepCheckpoint(path).load()
        assert list(restored) == [key]
        assert list(restored)[0].placement == "migrate"


class TestTornTailSalvage:
    """Crash mid-fsync leaves a record cut short; resume must salvage."""

    @staticmethod
    def _tear(path, bytes_cut=10):
        """Chop the file mid-way through its final record, the way a
        SIGKILL between write and fsync does."""
        size = os.path.getsize(path)
        with open(path, "rb+") as handle:
            handle.truncate(size - bytes_cut)

    def test_hand_truncated_file_salvages_complete_records(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = SweepCheckpoint(path)
        store.append(_key("fop"), _result("fop"))
        store.append(_key("lusearch"), _result("lusearch"))
        self._tear(path)
        loader = SweepCheckpoint(path)
        restored = loader.load()
        assert list(restored) == [_key("fop")]
        assert loader.torn_tail is True
        assert loader.skipped == 0

    def test_clean_file_reports_no_tear(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = SweepCheckpoint(path)
        store.append(_key(), _result())
        loader = SweepCheckpoint(path)
        loader.load()
        assert loader.torn_tail is False

    def test_append_after_tear_cannot_fuse_records(self, tmp_path):
        # The poisoning scenario this PR fixes: without tail repair the
        # next append lands on the torn line and JSON-breaks *both*.
        path = str(tmp_path / "ckpt.jsonl")
        store = SweepCheckpoint(path)
        store.append(_key("fop"), _result("fop"))
        store.append(_key("lusearch"), _result("lusearch"))
        self._tear(path)
        store.append(_key("pmd"), _result("pmd"))
        loader = SweepCheckpoint(path)
        restored = loader.load()
        assert sorted(k.benchmark for k in restored) == ["fop", "pmd"]
        assert loader.skipped == 0

    def test_salvage_jsonl_reports_torn_flag(self, tmp_path):
        path = str(tmp_path / "raw.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"a": 1}\n{"b": 2')
        lines, torn = salvage_jsonl(path)
        assert lines == ['{"a": 1}']
        assert torn is True

    def test_repair_jsonl_tail_truncates_partial_line(self, tmp_path):
        path = str(tmp_path / "raw.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"a": 1}\n{"b": 2')
        assert repair_jsonl_tail(path) is True
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read() == '{"a": 1}\n'
        assert repair_jsonl_tail(path) is False  # already clean

    def test_repair_missing_file_is_noop(self, tmp_path):
        assert repair_jsonl_tail(str(tmp_path / "absent.jsonl")) is False

    def test_malformed_complete_line_counts_as_skipped(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        store = SweepCheckpoint(path)
        store.append(_key(), _result())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "' + CHECKPOINT_SCHEMA
                         + '", "key": "not-a-dict"}\n')
        loader = SweepCheckpoint(path)
        restored = loader.load()
        assert list(restored) == [_key()]
        assert loader.skipped == 1
        assert loader.torn_tail is False
