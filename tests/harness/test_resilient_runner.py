"""The experiment scripts' --on-error machinery (ResilientRunner)."""

import math

import pytest

from repro.experiments.common import ResilientRunner, error_result
from repro.harness.experiment import RetryPolicy, RunKey
from repro.harness.tables import format_table
from repro.core.platform import EmulationMode
from repro.observability.metrics import METRICS


@pytest.fixture(autouse=True)
def clean_registry():
    METRICS.reset()
    yield
    METRICS.reset()


def _key(benchmark="no-such-benchmark"):
    return RunKey(benchmark, "PCM-Only", 1, "default",
                  EmulationMode.EMULATION)


class TestErrorResult:
    def test_numeric_fields_are_nan(self):
        result = error_result(_key())
        assert math.isnan(result.pcm_write_lines)
        assert math.isnan(result.elapsed_seconds)
        assert math.isnan(result.pcm_write_rate_mbs)

    def test_nan_propagates_into_err_cells(self):
        result = error_result(_key())
        normalised = result.pcm_write_lines / 1000.0
        text = format_table(["bench", "writes"],
                            [["no-such-benchmark", normalised]])
        assert "ERR" in text


class TestResilientRunner:
    def test_fail_mode_propagates(self):
        runner = ResilientRunner(on_error="fail")
        with pytest.raises(KeyError):
            runner.run("no-such-benchmark")

    def test_skip_mode_substitutes_an_error_cell(self):
        runner = ResilientRunner(on_error="skip")
        result = runner.run("no-such-benchmark")
        assert math.isnan(result.pcm_write_lines)
        assert len(runner.errors) == 1
        key, exc = runner.errors[0]
        assert key.benchmark == "no-such-benchmark"
        assert isinstance(exc, KeyError)
        assert METRICS.value("runner.failures") == 1

    def test_failed_cells_are_cached(self):
        runner = ResilientRunner(on_error="skip")
        first = runner.run("no-such-benchmark")
        second = runner.run("no-such-benchmark")
        assert first is second
        assert len(runner.errors) == 1

    def test_retry_mode_counts_attempts(self):
        runner = ResilientRunner(on_error="retry",
                                 retry=RetryPolicy(max_attempts=3))
        result = runner.run("no-such-benchmark")
        assert math.isnan(result.pcm_write_lines)
        assert METRICS.value("runner.retries") == 2

    def test_healthy_runs_are_untouched(self):
        runner = ResilientRunner(on_error="skip")
        result = runner.run("fop")
        assert result.pcm_write_lines > 0
        assert runner.errors == []

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ResilientRunner(on_error="explode")
