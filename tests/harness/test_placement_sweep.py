"""Placement-aware sweeps: fan-out bit-identity and key separation."""

import pytest

from repro.core.platform import EmulationMode
from repro.harness.experiment import ExperimentRunner, RunKey
from repro.observability.metrics import METRICS


def _key(collector="PCM-Only", placement="static"):
    return RunKey("fop", collector, 1, "default",
                  EmulationMode.EMULATION, placement=placement)


KEYS = [_key("PCM-Only", "migrate"), _key("KG-N", "migrate"),
        _key("KG-N", "static")]


@pytest.fixture(autouse=True)
def clean_registry():
    METRICS.reset()
    yield
    METRICS.reset()


def _values(results):
    return [(r.placement, r.pcm_write_lines, r.dram_write_lines,
             r.pages_migrated, r.migration_writes,
             r.pcm_migration_write_lines, r.dram_migration_write_lines)
            for r in results]


class TestPlacementSweep:
    def test_pool_and_serial_fanout_bit_identical(self):
        # The migrate policy runs inside the workers; its migrations
        # must be as deterministic as the mutator's writes, so a pooled
        # fan-out and an in-process serial sweep agree to the line.
        pooled = ExperimentRunner().sweep(KEYS, max_workers=2)
        serial = ExperimentRunner().sweep(KEYS, max_workers=1)
        assert _values(pooled.results) == _values(serial.results)

    def test_placement_reaches_the_result(self):
        report = ExperimentRunner().sweep([_key("KG-N", "migrate")],
                                          max_workers=1)
        result = report.results[0]
        assert result.placement == "migrate"
        assert result.migration_writes == (
            result.pcm_migration_write_lines
            + result.dram_migration_write_lines)

    def test_placements_are_distinct_cache_keys(self):
        runner = ExperimentRunner()
        static = runner.run("fop", "KG-N", placement="static")
        migrate = runner.run("fop", "KG-N", placement="migrate")
        # Same benchmark/collector, different policy: the memo cache
        # must not alias them (migrate pays migration writes under
        # the OS policy; GC-directed static never does).
        assert static.placement == "static"
        assert migrate.placement == "migrate"
        assert static.migration_writes == 0
        assert migrate.pages_migrated > 0
