"""Unit tests for experiment aggregation logic with a stubbed runner.

The experiment modules aggregate MeasurementResults into the paper's
tables; these tests verify that math against hand-built results,
without running any simulation.
"""

from typing import Dict, Tuple

import pytest

from repro.core.platform import EmulationMode, MeasurementResult
from repro.experiments import figure3, figure4, figure7, table3


class FakeRunner:
    """Dict-backed stand-in for ExperimentRunner."""

    def __init__(self) -> None:
        self.results: Dict[Tuple, MeasurementResult] = {}

    def add(self, benchmark, collector, pcm_lines, instances=1,
            elapsed=1e-3, mode=EmulationMode.EMULATION, dataset="default"):
        result = MeasurementResult(
            benchmark=benchmark, collector=collector, mode=mode,
            instances=instances, pcm_write_lines=pcm_lines,
            dram_write_lines=0, elapsed_seconds=elapsed,
            per_tag_pcm_writes={}, per_tag_dram_writes={},
            instance_stats=[])
        self.results[(benchmark, collector, instances, dataset, mode)] = \
            result
        return result

    def run(self, benchmark, collector="PCM-Only", instances=1,
            dataset="default", mode=EmulationMode.EMULATION, llc_size=0):
        return self.results[(benchmark, collector, instances, dataset,
                             mode)]


class TestFigure3Math:
    def test_normalization_to_cpp(self):
        runner = FakeRunner()
        for app, cpp, java, kgn, kgw in (("pr", 100, 300, 50, 30),
                                         ("cc", 200, 400, 90, 50),
                                         ("als", 100, 150, 110, 20)):
            runner.add(app + ".cpp", "PCM-Only", cpp)
            runner.add(app, "PCM-Only", java)
            runner.add(app, "KG-N", kgn)
            runner.add(app, "KG-W", kgw)
        output = figure3.run(runner)
        assert output.data["normalized"]["Java"]["PR"] == pytest.approx(3.0)
        assert output.data["normalized"]["KG-W"]["ALS"] == pytest.approx(0.2)
        assert output.data["raw"]["C++"]["CC"] == 200


class TestFigure4Math:
    def test_growth_normalizes_suite_totals(self):
        runner = FakeRunner()
        from repro.experiments.figure4 import SUITES
        for suite, benchmarks in SUITES.items():
            for benchmark in benchmarks:
                for count, factor in ((1, 1), (2, 2), (4, 8)):
                    for collector in ("PCM-Only", "KG-W"):
                        runner.add(benchmark, collector, 100 * factor,
                                   instances=count)
        output = figure4.run(runner)
        for suite_values in output.data["PCM-Only"].values():
            assert suite_values["1"] == pytest.approx(1.0)
            assert suite_values["2"] == pytest.approx(2.0)
            assert suite_values["4"] == pytest.approx(8.0)

    def test_base_effect_does_not_dominate(self):
        # One benchmark with a near-zero single-instance count must not
        # blow up the suite average (writes are summed, then normalised).
        runner = FakeRunner()
        from repro.experiments.figure4 import SUITES
        for suite, benchmarks in SUITES.items():
            for index, benchmark in enumerate(benchmarks):
                small = index == 0
                for count in (1, 2, 4):
                    for collector in ("PCM-Only", "KG-W"):
                        base = 1 if small else 1000
                        runner.add(benchmark, collector,
                                   base * count * (100 if small else 1),
                                   instances=count)
        output = figure4.run(runner)
        assert output.data["PCM-Only"]["DaCapo"]["4"] < 10


class TestFigure7Math:
    def test_normalized_to_pcm_only(self):
        runner = FakeRunner()
        from repro.experiments.common import FIGURE7_COLLECTORS
        for app in ("pr", "cc", "als"):
            runner.add(app, "PCM-Only", 1000)
            for collector in FIGURE7_COLLECTORS:
                runner.add(app, collector, 250)
        output = figure7.run(runner)
        assert output.data["normalized"]["KG-W"]["PR"] == pytest.approx(0.25)


class TestTable3Math:
    def test_worst_case_rate_drives_lifetime(self):
        runner = FakeRunner()
        from repro.experiments.table3 import BENCHMARKS
        for benchmark in BENCHMARKS:
            for collector in ("PCM-Only", "KG-W"):
                for count in (1, 4):
                    # One benchmark is the clear worst case.
                    lines = 4000 if benchmark == "pr" else 100
                    scale = count * (1 if collector == "KG-W" else 4)
                    runner.add(benchmark, collector, lines * scale,
                               instances=count, elapsed=1e-3)
        output = table3.run(runner)
        worst = output.data["worst_rate_mbs"]
        assert worst["PCM-Only"][1] > worst["KG-W"][1]
        assert worst["PCM-Only"][4] > worst["PCM-Only"][1]


class TestTable2Math:
    def test_reduction_and_blowup(self):
        runner = FakeRunner()
        from repro.experiments import table2
        from repro.experiments.common import DACAPO_SIMULATABLE
        for mode in (EmulationMode.SIMULATION, EmulationMode.EMULATION):
            for benchmark in DACAPO_SIMULATABLE:
                runner.add(benchmark, "PCM-Only", 1000, mode=mode)
                runner.add(benchmark, "KG-N", 900, mode=mode, elapsed=1.0)
                runner.add(benchmark, "KG-B", 850, mode=mode, elapsed=1.1)
                runner.add(benchmark, "KG-W", 400, mode=mode, elapsed=1.08)
        output = table2.run(runner)
        reductions = output.data["reductions"]
        assert reductions["simulation"]["KG-N"] == pytest.approx(10.0)
        assert reductions["emulation"]["KG-W"] == pytest.approx(60.0)
        # total writes are pcm+dram (dram=0 in the fakes)
        assert output.data["kgb_total_blowup"]["simulation"] == \
            pytest.approx(850 / 900)
        assert output.data["kgw_overhead_percent"]["emulation"] == \
            pytest.approx(8.0)


class TestFigure8Math:
    def test_relative_rates(self):
        runner = FakeRunner()
        from repro.experiments import figure8
        for benchmark in figure8.BENCHMARKS:
            for collector in figure8.COLLECTORS:
                runner.add(benchmark, collector, 1000, elapsed=1e-3)
                runner.add(benchmark, collector, 5000, elapsed=1e-2,
                           dataset="large")
        output = figure8.run(runner)
        for collector in figure8.COLLECTORS:
            for value in output.data["relative"][collector].values():
                assert value == pytest.approx(0.5)
