"""Profiled sweeps: runner flag, report access, checkpoint survival.

Profiling is a *runner-level* mode (``ExperimentRunner(profile=True)``)
so the memoisation cache never mixes profiled and unprofiled results.
The profile artifact must ride the whole harness path: serial sweep,
``SweepReport.profiles``, the checkpoint JSONL, and a resumed sweep.
"""

import pytest

from repro.core.platform import EmulationMode
from repro.harness.checkpoint import result_from_dict, result_to_dict
from repro.harness.experiment import ExperimentRunner, RunKey
from repro.observability.profile import PROFILER, attributed_total


@pytest.fixture(autouse=True)
def profiler_off_after():
    yield
    PROFILER.disable()


def _key(benchmark="fop", collector="KG-W"):
    return RunKey(benchmark, collector, 1, "default",
                  EmulationMode.EMULATION)


class TestRunnerFlag:
    def test_profiled_run_carries_conserving_artifact(self):
        runner = ExperimentRunner(profile=True)
        result = runner.run("fop", "KG-W")
        profile = result.profile
        assert profile is not None
        assert attributed_total(profile, "pcm.writes") == \
            result.pcm_write_lines
        assert attributed_total(profile, "dram.writes") == \
            result.dram_write_lines

    def test_default_runner_does_not_profile(self):
        runner = ExperimentRunner()
        assert runner.run("fop", "KG-W").profile is None

    def test_profiler_disabled_after_each_run(self):
        runner = ExperimentRunner(profile=True)
        runner.run("fop", "KG-W")
        assert PROFILER.enabled is False

    def test_cached_result_keeps_its_profile(self):
        runner = ExperimentRunner(profile=True)
        first = runner.run("fop", "KG-W")
        second = runner.run("fop", "KG-W")
        assert first is second
        assert second.profile is not None


class TestProfiledSweep:
    def test_serial_sweep_reports_profiles_in_order(self):
        runner = ExperimentRunner(profile=True)
        keys = [_key(collector="KG-W"), _key(collector="KG-N")]
        report = runner.sweep(keys, max_workers=1)
        assert report.ok
        assert all(profile is not None for profile in report.profiles)
        collectors = [profile["meta"]["collector"]
                      for profile in report.profiles]
        assert collectors == ["KG-W", "KG-N"]

    def test_unprofiled_sweep_reports_none(self):
        runner = ExperimentRunner()
        report = runner.sweep([_key()], max_workers=1)
        assert report.ok
        assert report.profiles == [None]


class TestCheckpointRoundTrip:
    def test_profile_survives_result_serialisation(self):
        runner = ExperimentRunner(profile=True)
        original = runner.run("fop", "KG-W")
        clone = result_from_dict(result_to_dict(original))
        assert clone.profile == original.profile

    def test_unprofiled_record_loads_as_none(self):
        runner = ExperimentRunner()
        payload = result_to_dict(runner.run("fop", "KG-W"))
        payload.pop("profile", None)  # a pre-profiler checkpoint line
        assert result_from_dict(payload).profile is None

    def test_resumed_sweep_replays_profiles(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        keys = [_key()]
        first = ExperimentRunner(profile=True)
        report = first.sweep(keys, max_workers=1, checkpoint=path)
        assert report.profiles[0] is not None

        resumed = ExperimentRunner(profile=True)
        replayed = resumed.sweep(keys, max_workers=1, checkpoint=path,
                                 resume=True)
        assert resumed.executions == 0
        assert replayed.profiles[0] == report.profiles[0]
