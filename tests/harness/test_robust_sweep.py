"""Crash-tolerant sweeps: retries, timeouts, degradation, checkpoints."""

import pytest

from repro.core.platform import EmulationMode
from repro.faults.worker import ENV_VAR
from repro.harness.checkpoint import SweepCheckpoint
from repro.harness.experiment import (
    ExperimentRunner,
    RetryPolicy,
    RunKey,
    SweepReport,
)
from repro.observability.metrics import METRICS


def _key(benchmark="fop", collector="PCM-Only", instances=1):
    return RunKey(benchmark, collector, instances, "default",
                  EmulationMode.EMULATION)


#: Eight distinct configurations (the acceptance-criteria sweep size).
EIGHT = [_key("fop", collector) for collector in (
    "PCM-Only", "KG-N", "KG-B", "KG-N+LOO", "KG-B+LOO", "KG-W",
    "KG-W-LOO", "KG-W-MDO")]


@pytest.fixture(autouse=True)
def clean_registry():
    METRICS.reset()
    yield
    METRICS.reset()


def _values(results):
    return [(r.pcm_write_lines, r.dram_write_lines, r.qpi_crossings,
             r.per_tag_pcm_writes, r.elapsed_seconds) for r in results]


def _comparable_metrics():
    """The registry minus wall-clock noise and harness bookkeeping.

    ``runner.*`` intentionally differs between a fresh and a resumed
    sweep (restored keys count as checkpoint restores, not executions);
    ``seconds`` histograms carry host timing noise.
    """
    return {name: summary for name, summary in METRICS.as_dict().items()
            if "seconds" not in name and not name.startswith("runner.")}


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)

    def test_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.5, backoff=2.0)
        assert [policy.delay(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]

    def test_default_has_no_delay(self):
        assert RetryPolicy().delay(1) == 0.0

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_default_jitter_keeps_old_schedule(self):
        # Existing sweep callers must stay byte-identical: jitter=0
        # ignores the salt entirely.
        plain = RetryPolicy(max_attempts=4, base_delay=0.5, backoff=2.0)
        assert [plain.delay(n, salt="anything") for n in (1, 2, 3)] \
            == [0.5, 1.0, 2.0]

    def test_jitter_is_deterministic_given_seed_salt_attempt(self):
        policy = RetryPolicy(base_delay=0.5, jitter=0.5, jitter_seed=7)
        again = RetryPolicy(base_delay=0.5, jitter=0.5, jitter_seed=7)
        assert policy.delay(1, salt="job-a") == again.delay(1, salt="job-a")
        assert policy.delay(2, salt="job-a") == again.delay(2, salt="job-a")

    def test_jitter_bounded_and_stretching(self):
        policy = RetryPolicy(base_delay=0.5, jitter=0.5, jitter_seed=7)
        delay = policy.delay(1, salt="job-a")
        assert 0.5 <= delay <= 0.75  # base .. base * (1 + jitter)

    def test_distinct_salts_decorrelate(self):
        # The thundering-herd property: concurrent retriers with
        # different salts must not share a schedule.
        policy = RetryPolicy(base_delay=0.5, jitter=0.5, jitter_seed=7)
        delays = {policy.delay(1, salt=f"job-{n}") for n in range(16)}
        assert len(delays) > 8

    def test_distinct_seeds_differ(self):
        one = RetryPolicy(base_delay=0.5, jitter=0.5, jitter_seed=1)
        two = RetryPolicy(base_delay=0.5, jitter=0.5, jitter_seed=2)
        assert one.delay(1, salt="job") != two.delay(1, salt="job")


class TestWorkerCrashRecovery:
    def test_one_crash_retries_and_siblings_survive(self, monkeypatch):
        """The acceptance sweep: >= 8 keys, one worker crash on the
        first attempt.  Every other key completes, the crashed key is
        retried per policy, and the report accounts for each input key
        exactly once, in input order."""
        monkeypatch.setenv(ENV_VAR, "crash:collector=KG-B,attempts=1")
        runner = ExperimentRunner()
        report = runner.sweep(EIGHT, max_workers=4,
                              retry=RetryPolicy(max_attempts=3))
        assert isinstance(report, SweepReport)
        assert [outcome.key for outcome in report.outcomes] == EIGHT
        assert report.ok
        crashed = next(o for o in report.outcomes
                       if o.key.collector == "KG-B")
        assert crashed.attempts >= 2
        assert runner.executions == len(EIGHT)
        assert METRICS.value("runner.retries") >= 1

    def test_crashed_results_match_a_serial_sweep(self, monkeypatch):
        serial = ExperimentRunner().sweep(EIGHT[:3], max_workers=1)
        METRICS.reset()
        monkeypatch.setenv(ENV_VAR, "crash:collector=KG-N,attempts=1")
        chaotic = ExperimentRunner().sweep(EIGHT[:3], max_workers=2,
                                           retry=RetryPolicy(max_attempts=3))
        assert _values(chaotic.results) == _values(serial.results)


class TestPersistentFailure:
    BAD = [_key("fop"), _key("no-such-benchmark"), _key("fop", "KG-N")]

    def test_failure_outcome_with_sibling_results(self):
        """A key that keeps failing (here: unknown benchmark, raised
        inside the worker) yields a failure RunOutcome while its
        siblings return results — the old pool.map path lost them."""
        runner = ExperimentRunner()
        report = runner.sweep(self.BAD, max_workers=2,
                              retry=RetryPolicy(max_attempts=2))
        assert not report.ok
        assert [outcome.ok for outcome in report.outcomes] == [
            True, False, True]
        failure = report.outcomes[1].failure
        assert failure.exception_type == "KeyError"
        assert failure.attempts == 2
        assert "no-such-benchmark" in failure.message
        assert METRICS.value("runner.failures") == 1

    def test_run_many_raises_only_after_siblings_complete(self):
        runner = ExperimentRunner()
        with pytest.raises(KeyError, match="no-such-benchmark"):
            runner.run_many(self.BAD, max_workers=2,
                            retry=RetryPolicy(max_attempts=1))
        # Both healthy keys finished and were cached before the raise.
        assert runner.executions == 2

    def test_serial_sweep_records_failures_too(self):
        runner = ExperimentRunner()
        report = runner.sweep(self.BAD, max_workers=1,
                              retry=RetryPolicy(max_attempts=2))
        assert [outcome.ok for outcome in report.outcomes] == [
            True, False, True]
        assert report.outcomes[1].failure.worker == "serial"

    def test_raise_first_failure_reraises_the_instance(self):
        report = ExperimentRunner().sweep(
            [_key("no-such-benchmark")], max_workers=1,
            retry=RetryPolicy(max_attempts=1))
        with pytest.raises(KeyError):
            report.raise_first_failure()


class TestHangRescue:
    def test_timeout_rescues_a_hung_worker(self, monkeypatch):
        monkeypatch.setenv(
            ENV_VAR, "hang:collector=KG-N,seconds=120,attempts=1")
        runner = ExperimentRunner()
        report = runner.sweep([_key("fop"), _key("fop", "KG-N"),
                               _key("fop", "KG-W")], max_workers=2,
                              retry=RetryPolicy(max_attempts=3),
                              timeout=8.0)
        assert report.ok
        hung = next(o for o in report.outcomes
                    if o.key.collector == "KG-N")
        assert hung.attempts >= 2
        assert METRICS.value("runner.timeouts") >= 1


class TestSerialDegradation:
    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        def broken(self, *args, **kwargs):
            raise OSError("no process pool on this host")

        monkeypatch.setattr(ExperimentRunner, "_pool_attempts", broken)
        runner = ExperimentRunner()
        report = runner.sweep(EIGHT[:3], max_workers=2)
        assert report.ok
        assert runner.executions == 3
        assert METRICS.value("runner.pool_degraded") == 1

    def test_single_fresh_key_runs_serially(self):
        runner = ExperimentRunner()
        report = runner.sweep([_key("fop")], max_workers=4)
        assert report.ok
        assert runner.executions == 1


class TestSweepCaching:
    def test_duplicates_and_cached_keys(self):
        runner = ExperimentRunner()
        keys = [EIGHT[0], EIGHT[1], EIGHT[0]]
        report = runner.sweep(keys, max_workers=2)
        assert report.ok
        assert report.outcomes[2].cached
        assert report.outcomes[0].result is report.outcomes[2].result
        assert runner.executions == 2
        assert runner.cache_hits == 1
        again = runner.sweep(keys, max_workers=2)
        assert runner.executions == 2
        assert all(outcome.cached for outcome in again.outcomes)


class TestCheckpointResume:
    def test_resume_executes_only_remaining_keys(self, tmp_path):
        """Kill-after-K simulation: the first sweep checkpoints two keys
        then 'dies'; the resumed sweep executes only the other two and
        the merged results and metrics are bit-identical to one
        uninterrupted serial sweep."""
        keys = EIGHT[:4]
        path = str(tmp_path / "sweep.ckpt")

        reference = ExperimentRunner().sweep(keys, max_workers=1)
        reference_metrics = _comparable_metrics()
        METRICS.reset()

        # "Killed after K=2": only the first half ever runs.
        ExperimentRunner().sweep(keys[:2], max_workers=1, checkpoint=path)
        assert len(SweepCheckpoint(path).load()) == 2
        METRICS.reset()

        resumed = ExperimentRunner()
        report = resumed.sweep(keys, max_workers=1, checkpoint=path,
                               resume=True)
        assert report.ok
        assert resumed.executions == 2, "restored keys must not re-run"
        assert [o.from_checkpoint for o in report.outcomes] == [
            True, True, False, False]
        assert _values(report.results) == _values(reference.results)
        assert _comparable_metrics() == reference_metrics
        assert METRICS.value("runner.checkpoint.restored") == 2

    def test_parallel_resume_matches_serial_reference(self, tmp_path):
        keys = EIGHT[:4]
        path = str(tmp_path / "sweep.ckpt")
        reference = ExperimentRunner().sweep(keys, max_workers=1)
        reference_metrics = _comparable_metrics()
        METRICS.reset()

        ExperimentRunner().sweep(keys[:2], max_workers=2, checkpoint=path)
        METRICS.reset()
        report = ExperimentRunner().sweep(keys, max_workers=2,
                                          checkpoint=path, resume=True)
        assert _values(report.results) == _values(reference.results)
        assert _comparable_metrics() == reference_metrics

    def test_without_resume_the_checkpoint_is_truncated(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        ExperimentRunner().sweep(EIGHT[:2], max_workers=1, checkpoint=path)
        assert len(SweepCheckpoint(path).load()) == 2
        ExperimentRunner().sweep([EIGHT[2]], max_workers=1, checkpoint=path)
        restored = SweepCheckpoint(path).load()
        assert list(restored) == [EIGHT[2]]

    def test_failed_keys_are_not_checkpointed(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        report = ExperimentRunner().sweep(
            [_key("fop"), _key("no-such-benchmark")], max_workers=1,
            retry=RetryPolicy(max_attempts=1), checkpoint=path)
        assert not report.ok
        assert list(SweepCheckpoint(path).load()) == [_key("fop")]


class TestWorkerSignalHygiene:
    def test_worker_init_clears_inherited_wakeup_fd(self):
        # A forked pool worker inherits the parent asyncio loop's
        # wakeup fd — a socketpair SHARED with the parent.  If the
        # executor SIGTERMs the worker, the inherited trampoline would
        # write into that socket and the parent would read the signal
        # as its own.  _worker_init must sever the link.
        import signal
        import socket

        from repro.harness.experiment import _worker_init

        left, right = socket.socketpair()
        try:
            left.setblocking(False)
            previous = signal.set_wakeup_fd(left.fileno())
            try:
                _worker_init()
                assert signal.set_wakeup_fd(-1) == -1  # already cleared
            finally:
                signal.set_wakeup_fd(previous)
        finally:
            left.close()
            right.close()

    def test_worker_init_restores_default_dispositions(self):
        import signal

        from repro.harness.experiment import _worker_init

        previous = signal.signal(signal.SIGTERM, signal.SIG_IGN)
        try:
            _worker_init()
            assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL
        finally:
            signal.signal(signal.SIGTERM, previous)
