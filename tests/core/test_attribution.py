"""End-to-end write attribution: per-phase deltas conserve globals.

The acceptance bar for the profiler: run a deterministic workload with
attribution on and check that the per-phase attributed counters sum to
the platform's global counters **bit-identically** — no sampling slop,
no missing phases.  The ``attribution_conservation`` SANITIZE law
enforces the same equality inside ``platform.run``; here it is pinned
from the outside against the MeasurementResult the caller sees.
"""

import pytest

from repro.core.platform import EmulationMode, HybridMemoryPlatform
from repro.observability.profile import (
    PROFILE_SCHEMA,
    PROFILER,
    attributed_total,
    parse_folded,
    to_chrome_trace,
    to_folded,
)
from repro.observability.trace import TRACER
from repro.workloads.base import BenchmarkApp


class ChurnApp(BenchmarkApp):
    """Deterministic allocation churn: enough garbage to force minor
    GCs, with a rooted survivor table so collections actually copy."""

    SLOTS = 64

    def __init__(self, index):
        super().__init__("churn", heap_budget=2 * 1024 * 1024,
                         nursery_size=64 * 1024, app_threads=2)
        self.table = None

    def setup(self, ctx):
        self.table = ctx.alloc(16, self.SLOTS)
        ctx.add_root(self.table)

    def iteration(self, ctx):
        for step in range(768):
            obj = ctx.alloc(512, 2)
            ctx.write_scalar(obj, 0)
            if step % 3 == 0:
                # Rooted survivors: these live across the next minor
                # GC, so gc.trace/gc.promote move real bytes.
                ctx.write_ref(self.table, step % self.SLOTS, obj)
            if step % 16 == 0:
                yield
        yield


@pytest.fixture(autouse=True)
def observability_off_after():
    yield
    PROFILER.disable()
    TRACER.disable()
    TRACER.boundary = None
    TRACER.clear()


def profiled_run(enable_trace=True):
    TRACER.clear()
    if enable_trace:
        TRACER.enable()
    PROFILER.enable()
    # A tiny LLC so stores spill to the memory nodes instead of living
    # in cache for the whole run — attribution needs memory traffic.
    platform = HybridMemoryPlatform(mode=EmulationMode.EMULATION,
                                    llc_size_override=32 * 1024)
    try:
        result = platform.run(lambda index: ChurnApp(index),
                              collector="KG-W", instances=1)
    finally:
        PROFILER.disable()
        TRACER.disable()
    return result


class TestConservation:
    def test_attributed_writes_sum_to_globals_bit_identically(self):
        result = profiled_run()
        profile = result.profile
        assert profile is not None
        assert profile["schema"] == PROFILE_SCHEMA
        assert attributed_total(profile, "pcm.writes") == \
            result.pcm_write_lines
        assert attributed_total(profile, "dram.writes") == \
            result.dram_write_lines
        assert attributed_total(profile, "qpi.crossings") == \
            result.qpi_crossings

    def test_deterministic_across_runs(self):
        first = profiled_run()
        second = profiled_run()
        assert first.profile["self"] == second.profile["self"]

    def test_phase_tree_covers_gc_and_mutator(self):
        result = profiled_run()
        paths = set(result.profile["self"])
        assert "run" in paths
        assert "run/mutator" in paths
        assert any(path.startswith("run/mutator/gc.minor")
                   for path in paths), paths

    def test_gc_phases_attract_writes(self):
        """The paper's point: GC phases are a visible write source."""
        result = profiled_run()
        gc_writes = sum(
            bucket.get("dram.writes", 0) + bucket.get("pcm.writes", 0)
            for path, bucket in result.profile["self"].items()
            if "/gc." in path)
        assert gc_writes > 0

    def test_profile_off_leaves_result_unprofiled(self):
        platform = HybridMemoryPlatform(mode=EmulationMode.EMULATION)
        result = platform.run(lambda index: ChurnApp(index),
                              collector="KG-W", instances=1)
        assert result.profile is None
        assert TRACER.depth() == 0

    def test_attribution_without_tracing(self):
        """Profiling alone (no span records) still conserves."""
        result = profiled_run(enable_trace=False)
        profile = result.profile
        assert profile["spans"] == []
        assert attributed_total(profile, "pcm.writes") == \
            result.pcm_write_lines

    def test_exporters_accept_real_artifact(self):
        result = profiled_run()
        trace = to_chrome_trace(result.profile)
        assert all(key in event for event in trace["traceEvents"]
                   for key in ("ph", "ts", "dur", "pid", "tid", "name"))
        folded = to_folded(result.profile, counter="dram.writes")
        stacks = parse_folded(folded)
        assert sum(stacks.values()) == \
            attributed_total(result.profile, "dram.writes")

    def test_sanitize_law_holds_on_a_real_run(self):
        """The in-run conservation check flags nothing on a clean run."""
        from repro.sanitize import SANITIZE

        TRACER.clear()
        PROFILER.enable()
        platform = HybridMemoryPlatform(mode=EmulationMode.EMULATION)
        try:
            with SANITIZE.installed(strict=False) as checker:
                platform.run(lambda index: ChurnApp(index),
                             collector="KG-W", instances=1)
        finally:
            PROFILER.disable()
        conservation = [v for v in checker.violations
                        if v.law == "attribution_conservation"]
        assert conservation == []
