"""Tests for the PCM lifetime model (Equation 1)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import GB
from repro.core.lifetime import (
    PCM_ENDURANCE_LEVELS,
    pcm_lifetime_years,
    worst_case_lifetime,
)


class TestEquation:
    def test_known_value(self):
        # 32 GB, 10M writes/cell, perfect wear-levelling, 450 MB/s
        # (the paper's worst-case PCM-Only graph write rates give ~10
        # years at 50% efficiency).
        years = pcm_lifetime_years(450.0, 10e6)
        assert years == pytest.approx(11.4, rel=0.05)

    def test_zero_rate_is_infinite(self):
        assert math.isinf(pcm_lifetime_years(0.0))

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            pcm_lifetime_years(-1.0)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ValueError):
            pcm_lifetime_years(100.0, wear_leveling_efficiency=0.0)
        with pytest.raises(ValueError):
            pcm_lifetime_years(100.0, wear_leveling_efficiency=1.5)

    def test_endurance_levels_table(self):
        assert len(PCM_ENDURANCE_LEVELS) == 3
        assert sorted(PCM_ENDURANCE_LEVELS.values()) == [10e6, 30e6, 50e6]


class TestScaling:
    @given(st.floats(1.0, 1e4))
    def test_lifetime_inversely_proportional_to_rate(self, rate):
        assert pcm_lifetime_years(rate) == pytest.approx(
            pcm_lifetime_years(2 * rate) * 2)

    @given(st.floats(1.0, 1e4))
    def test_lifetime_proportional_to_endurance(self, rate):
        assert pcm_lifetime_years(rate, 50e6) == pytest.approx(
            5 * pcm_lifetime_years(rate, 10e6))

    def test_larger_device_lasts_longer(self):
        assert pcm_lifetime_years(100, pcm_bytes=64 * GB) == pytest.approx(
            2 * pcm_lifetime_years(100, pcm_bytes=32 * GB))


class TestWorstCase:
    def test_takes_maximum_rate(self):
        assert worst_case_lifetime([10.0, 200.0, 50.0]) == \
            pcm_lifetime_years(200.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            worst_case_lifetime([])

    def test_model_parameters_are_keyword_only(self):
        # The old ``**kwargs`` forwarding accepted a positional second
        # argument that silently shadowed ``endurance_writes_per_cell``.
        with pytest.raises(TypeError):
            worst_case_lifetime([100.0], 30e6)  # type: ignore[misc]

    def test_keyword_parameters_reach_the_model(self):
        base = worst_case_lifetime([100.0])
        assert worst_case_lifetime(
            [100.0], endurance_writes_per_cell=30e6) == \
            pytest.approx(3 * base)
        assert worst_case_lifetime(
            [100.0], wear_leveling_efficiency=1.0) == \
            pytest.approx(2 * base)

    def test_table3_recommended_rate_pin(self):
        # Table III anchor: 140 MB/s at 10M writes/cell on 32 GB with
        # 50 % levelling gives ~36.6 years.  Pins the exact forwarding
        # of every model parameter.
        assert worst_case_lifetime([140.0, 23.0, 2.6]) == \
            pytest.approx(36.6, abs=0.05)
        assert worst_case_lifetime(
            [140.0], endurance_writes_per_cell=50e6) == \
            pytest.approx(5 * 36.6, rel=0.01)
