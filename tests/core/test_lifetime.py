"""Tests for the PCM lifetime model (Equation 1)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import GB
from repro.core.lifetime import (
    PCM_ENDURANCE_LEVELS,
    pcm_lifetime_years,
    worst_case_lifetime,
)


class TestEquation:
    def test_known_value(self):
        # 32 GB, 10M writes/cell, perfect wear-levelling, 450 MB/s
        # (the paper's worst-case PCM-Only graph write rates give ~10
        # years at 50% efficiency).
        years = pcm_lifetime_years(450.0, 10e6)
        assert years == pytest.approx(11.4, rel=0.05)

    def test_zero_rate_is_infinite(self):
        assert math.isinf(pcm_lifetime_years(0.0))

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            pcm_lifetime_years(-1.0)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ValueError):
            pcm_lifetime_years(100.0, wear_leveling_efficiency=0.0)
        with pytest.raises(ValueError):
            pcm_lifetime_years(100.0, wear_leveling_efficiency=1.5)

    def test_endurance_levels_table(self):
        assert len(PCM_ENDURANCE_LEVELS) == 3
        assert sorted(PCM_ENDURANCE_LEVELS.values()) == [10e6, 30e6, 50e6]


class TestScaling:
    @given(st.floats(1.0, 1e4))
    def test_lifetime_inversely_proportional_to_rate(self, rate):
        assert pcm_lifetime_years(rate) == pytest.approx(
            pcm_lifetime_years(2 * rate) * 2)

    @given(st.floats(1.0, 1e4))
    def test_lifetime_proportional_to_endurance(self, rate):
        assert pcm_lifetime_years(rate, 50e6) == pytest.approx(
            5 * pcm_lifetime_years(rate, 10e6))

    def test_larger_device_lasts_longer(self):
        assert pcm_lifetime_years(100, pcm_bytes=64 * GB) == pytest.approx(
            2 * pcm_lifetime_years(100, pcm_bytes=32 * GB))


class TestWorstCase:
    def test_takes_maximum_rate(self):
        assert worst_case_lifetime([10.0, 200.0, 50.0]) == \
            pcm_lifetime_years(200.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            worst_case_lifetime([])
