"""Regression tests for remembered-set edge cases.

The property-based GC tests originally caught these; the explicit
scenarios are kept as fast, named regressions.
"""

from tests.conftest import build_test_vm


class TestObserverTenureRemset:
    def test_tenured_observer_object_keeps_young_referent_alive(self):
        """An object tenured out of the observer that still points at a
        young object must enter the remembered set (found by hypothesis:
        the referent was collected at the next minor GC)."""
        vm = build_test_vm("KG-W")
        ctx = vm.mutator()
        parent = ctx.alloc(scalar_bytes=16, num_refs=1)
        ctx.add_root(parent)
        vm.minor_collect()                      # parent -> observer
        assert parent.space == "observer"
        child = ctx.alloc(scalar_bytes=16)      # young
        ctx.write_ref(parent, 0, child)         # observer -> nursery store
        ctx.write_scalar(parent)                # parent is "written"
        vm.collector.minor_collect(vm, force_observer=True)
        assert parent.space == "mature.dram"    # tenured out of young
        assert parent in vm.remset              # re-registered
        # The child must survive the next young collection.
        vm.minor_collect()
        resident = {id(o) for s in vm.heap.spaces.values()
                    for o in s.live_objects()}
        assert id(child) in resident
        assert parent.refs[0] is child

    def test_unwritten_tenure_to_pcm_also_registers(self):
        vm = build_test_vm("KG-W")
        ctx = vm.mutator()
        parent = ctx.alloc(scalar_bytes=16, num_refs=1)
        ctx.add_root(parent)
        vm.minor_collect()
        child = ctx.alloc(scalar_bytes=16)
        ctx.write_ref(parent, 0, child)
        # Clear the barrier-inserted entry scenario: parent is young, so
        # the store was not recorded; tenure must catch it.
        vm.collector.minor_collect(vm, force_observer=True)
        assert parent.space in ("mature.pcm", "mature.dram")
        vm.minor_collect()
        resident = {id(o) for s in vm.heap.spaces.values()
                    for o in s.live_objects()}
        assert id(child) in resident

    def test_remset_pruned_when_referent_tenures_too(self):
        vm = build_test_vm("KG-W")
        ctx = vm.mutator()
        parent = ctx.alloc(scalar_bytes=16, num_refs=1)
        child = ctx.alloc(scalar_bytes=16)
        ctx.write_ref(parent, 0, child)
        ctx.add_root(parent)
        vm.collector.minor_collect(vm, force_observer=True)  # both -> observer
        vm.collector.minor_collect(vm, force_observer=True)  # both -> mature
        assert parent.addr < vm.young_boundary
        assert child.addr < vm.young_boundary
        # Neither references a young object now: remset must be clean.
        assert parent not in vm.remset


class TestGenImmixPromotionRemset:
    def test_kgn_survivor_cluster_has_no_stale_young_refs(self):
        vm = build_test_vm("KG-N")
        ctx = vm.mutator()
        parent = ctx.alloc(scalar_bytes=16, num_refs=1)
        child = ctx.alloc(scalar_bytes=16)
        ctx.write_ref(parent, 0, child)
        ctx.add_root(parent)
        vm.minor_collect()
        # Both promoted together; no young refs remain.
        assert parent.space == "mature.pcm"
        assert child.space == "mature.pcm"
        assert vm.remset == []
