"""Tests for the write-rate monitor."""

import math

import pytest

from repro.core.monitor import WriteRateMonitor
from repro.kernel.vm import Kernel

from tests.conftest import build_test_machine


@pytest.fixture
def monitor(kernel):
    return WriteRateMonitor(kernel)


class TestSampling:
    def test_sample_records_counters(self, monitor, kernel):
        kernel.machine.nodes[1].record_write(0)
        sample = monitor.sample(round_index=1)
        assert sample.node_writes[1] == 1
        assert len(monitor.samples) == 1

    def test_monitor_generates_dram_noise(self, monitor, kernel):
        for index in range(20):
            monitor.sample(index)
        kernel.machine.flush_all([monitor.thread.core_path])
        # The monitor runs on socket 0 and writes only there.
        assert kernel.machine.nodes[0].writes_by_tag.get("monitor", 0) > 0
        assert "monitor" not in kernel.machine.nodes[1].writes_by_tag

    def test_reset_clears_samples(self, monitor):
        monitor.sample(0)
        monitor.reset()
        assert monitor.samples == []

    def test_samples_are_monotone_cumulative(self, monitor, kernel):
        node = kernel.machine.nodes[1]
        for index in range(5):
            for _ in range(index * 3):
                node.record_write(0)
            monitor.sample(index)
        series = [s.node_writes for s in monitor.samples]
        for earlier, later in zip(series, series[1:]):
            for node_id in range(len(earlier)):
                assert later[node_id] >= earlier[node_id]

    def test_noise_lands_only_on_socket0(self, monitor, kernel):
        pcm_before = kernel.machine.nodes[1].write_lines
        for index in range(50):
            monitor.sample(index)
        kernel.machine.flush_all([monitor.thread.core_path])
        assert kernel.machine.nodes[0].write_lines > 0
        assert kernel.machine.nodes[1].write_lines == pcm_before

    def test_sample_increments_registry_counter(self, monitor):
        from repro.observability.metrics import METRICS

        before = METRICS.value("monitor.samples")
        monitor.sample(0)
        monitor.sample(1)
        assert METRICS.value("monitor.samples") == before + 2

    def test_sample_emits_trace_event(self, monitor, kernel):
        from repro.observability.trace import TRACER

        kernel.machine.nodes[1].record_write(0)
        with TRACER.capture() as tracer:
            monitor.sample(round_index=7)
        (event,) = tracer.events("monitor.sample")
        assert event["attrs"]["round"] == 7
        assert event["attrs"]["node_writes"][1] == 1


class TestRateSeries:
    def test_series_from_samples(self, monitor, kernel):
        node = kernel.machine.nodes[1]
        monitor.sample(0)
        for _ in range(100):
            node.record_write(0)
        monitor.sample(10)
        rates = monitor.write_rate_series(cycles_per_round=1_000_000,
                                          frequency_hz=1_000_000_000)
        assert len(rates) == 1
        # 100 lines * 64 B over 10 ms = 0.64 MB/s.
        assert rates[0] == pytest.approx(0.64)

    def test_empty_series(self, monitor):
        assert monitor.write_rate_series(1000, 1e9) == []

    def test_series_length_is_samples_minus_one(self, monitor):
        for index in range(6):
            monitor.sample(index)
        rates = monitor.write_rate_series(cycles_per_round=1_000,
                                          frequency_hz=1e9)
        assert len(rates) == len(monitor.samples) - 1

    def test_series_units_are_megabytes_per_second(self, monitor, kernel):
        node = kernel.machine.nodes[1]
        monitor.sample(0)
        monitor.sample(1)  # no PCM writes in the first interval
        for _ in range(2000):
            node.record_write(0)
        monitor.sample(2)
        # One round at 1e6 cycles / 1 GHz = 1 ms per interval.
        rates = monitor.write_rate_series(cycles_per_round=1_000_000,
                                          frequency_hz=1e9)
        assert rates[0] == pytest.approx(0.0)
        # 2000 lines * 64 B over 1 ms = 128 MB/s.
        assert rates[1] == pytest.approx(128.0)

    def test_degenerate_interval_marked_nan(self, monitor, kernel):
        # Duplicate round indices used to be silently *skipped*, which
        # shifted every later rate one GC round earlier.  The series
        # must keep its slot, marked NaN.
        node = kernel.machine.nodes[1]
        monitor.sample(0)
        monitor.sample(0)  # duplicate round: zero-length interval
        for _ in range(1000):
            node.record_write(0)
        monitor.sample(1)
        rates = monitor.write_rate_series(cycles_per_round=1_000_000,
                                          frequency_hz=1e9)
        assert len(rates) == len(monitor.samples) - 1
        assert math.isnan(rates[0])
        # 1000 lines * 64 B over 1 ms = 64 MB/s, in the right slot.
        assert rates[1] == pytest.approx(64.0)

    def test_out_of_order_rounds_marked_nan(self, monitor):
        monitor.sample(5)
        monitor.sample(3)
        rates = monitor.write_rate_series(1_000_000, 1e9)
        assert len(rates) == 1 and math.isnan(rates[0])

    def test_strict_raises_on_degenerate_interval(self, monitor):
        monitor.sample(2)
        monitor.sample(2)
        with pytest.raises(ValueError, match="non-positive"):
            monitor.write_rate_series(1_000_000, 1e9, strict=True)

    def test_strict_accepts_clean_series(self, monitor, kernel):
        node = kernel.machine.nodes[1]
        monitor.sample(0)
        for _ in range(100):
            node.record_write(0)
        monitor.sample(10)
        rates = monitor.write_rate_series(1_000_000, 1_000_000_000,
                                          strict=True)
        assert rates == [pytest.approx(0.64)]

    def test_shutdown_releases_buffer(self, kernel):
        monitor = WriteRateMonitor(kernel)
        monitor.shutdown()
        assert kernel.machine.nodes[0].frames_in_use == 0


class TestMigrationSplit:
    """Page-migration copies are device traffic, not mutator writes;
    the default series must not report them as application write rate."""

    def _mixed_interval(self, monitor, kernel):
        node = kernel.machine.nodes[1]
        monitor.sample(0)
        for _ in range(1000):
            node.record_write(0)           # mutator write-backs
        for _ in range(500):
            node.record_migration_write(0)  # OS page-copy traffic
        monitor.sample(1)

    def test_default_series_is_mutator_only(self, monitor, kernel):
        self._mixed_interval(monitor, kernel)
        rates = monitor.write_rate_series(1_000_000, 1e9)
        # 1000 mutator lines * 64 B over 1 ms = 64 MB/s; the 500
        # migration lines must not inflate it to 96.
        assert rates == [pytest.approx(64.0)]

    def test_include_migrations_gives_device_rate(self, monitor, kernel):
        self._mixed_interval(monitor, kernel)
        rates = monitor.write_rate_series(1_000_000, 1e9,
                                          include_migrations=True)
        # All 1500 lines: the raw rate the wear model sees.
        assert rates == [pytest.approx(96.0)]

    def test_samples_capture_migration_counters(self, monitor, kernel):
        kernel.machine.nodes[1].record_migration_write(0)
        sample = monitor.sample(0)
        assert sample.node_migration_writes[1] == 1

    def test_legacy_samples_without_migration_field(self, monitor, kernel):
        # Samples recorded before the field existed deserialise with an
        # empty list; the subtraction must treat them as zero, not
        # crash or misalign the series.
        node = kernel.machine.nodes[1]
        monitor.sample(0)
        for _ in range(1000):
            node.record_write(0)
        monitor.sample(1)
        for sample in monitor.samples:
            sample.node_migration_writes = []
        rates = monitor.write_rate_series(1_000_000, 1e9)
        assert rates == [pytest.approx(64.0)]
