"""Tests for the write-rate monitor."""

import pytest

from repro.core.monitor import WriteRateMonitor
from repro.kernel.vm import Kernel

from tests.conftest import build_test_machine


@pytest.fixture
def monitor(kernel):
    return WriteRateMonitor(kernel)


class TestSampling:
    def test_sample_records_counters(self, monitor, kernel):
        kernel.machine.nodes[1].record_write(0)
        sample = monitor.sample(round_index=1)
        assert sample.node_writes[1] == 1
        assert len(monitor.samples) == 1

    def test_monitor_generates_dram_noise(self, monitor, kernel):
        for index in range(20):
            monitor.sample(index)
        kernel.machine.flush_all([monitor.thread.core_path])
        # The monitor runs on socket 0 and writes only there.
        assert kernel.machine.nodes[0].writes_by_tag.get("monitor", 0) > 0
        assert "monitor" not in kernel.machine.nodes[1].writes_by_tag

    def test_reset_clears_samples(self, monitor):
        monitor.sample(0)
        monitor.reset()
        assert monitor.samples == []


class TestRateSeries:
    def test_series_from_samples(self, monitor, kernel):
        node = kernel.machine.nodes[1]
        monitor.sample(0)
        for _ in range(100):
            node.record_write(0)
        monitor.sample(10)
        rates = monitor.write_rate_series(cycles_per_round=1_000_000,
                                          frequency_hz=1_000_000_000)
        assert len(rates) == 1
        # 100 lines * 64 B over 10 ms = 0.64 MB/s.
        assert rates[0] == pytest.approx(0.64)

    def test_empty_series(self, monitor):
        assert monitor.write_rate_series(1000, 1e9) == []

    def test_shutdown_releases_buffer(self, kernel):
        monitor = WriteRateMonitor(kernel)
        monitor.shutdown()
        assert kernel.machine.nodes[0].frames_in_use == 0
