"""Tests for the emulation platform and its measurement protocol."""

import pytest

from repro.config import MB, scaled
from repro.core.platform import EmulationMode, HybridMemoryPlatform
from repro.workloads.base import SyntheticApp, WorkloadProfile


def tiny_factory(ops=3000, **profile_kwargs):
    profile = WorkloadProfile(ops=ops, **profile_kwargs)

    def factory(index):
        return SyntheticApp("tiny", "dacapo", profile,
                            heap_budget=scaled(64 * MB),
                            nursery_size=scaled(4 * MB),
                            seed=31 + index)
    return factory


@pytest.fixture(scope="module")
def platform():
    return HybridMemoryPlatform(EmulationMode.EMULATION)


class TestRun:
    def test_basic_run_produces_writes(self, platform):
        result = platform.run(tiny_factory(), collector="PCM-Only")
        assert result.pcm_write_lines > 0
        assert result.dram_write_lines == 0  # heap and threads on PCM
        assert result.elapsed_seconds > 0
        assert result.benchmark == "tiny"

    def test_kgn_shifts_writes_to_dram(self, platform):
        result = platform.run(tiny_factory(alloc_per_op=3.0),
                              collector="KG-N")
        assert result.dram_write_lines > 0

    def test_instance_stats_reported(self, platform):
        result = platform.run(tiny_factory(), collector="KG-N")
        assert len(result.instance_stats) == 1
        assert result.instance_stats[0].objects_allocated > 0

    def test_multi_instance(self, platform):
        result = platform.run(tiny_factory(), collector="PCM-Only",
                              instances=2)
        assert result.instances == 2
        assert len(result.instance_stats) == 2

    def test_multiprogramming_increases_writes(self, platform):
        one = platform.run(tiny_factory(), collector="PCM-Only")
        two = platform.run(tiny_factory(), collector="PCM-Only",
                           instances=2)
        assert two.pcm_write_lines > one.pcm_write_lines

    def test_zero_instances_rejected(self, platform):
        with pytest.raises(ValueError):
            platform.run(tiny_factory(), instances=0)

    def test_result_properties(self, platform):
        result = platform.run(tiny_factory(), collector="PCM-Only")
        assert result.pcm_write_bytes == 64 * result.pcm_write_lines
        assert result.total_write_lines == (result.pcm_write_lines
                                            + result.dram_write_lines)
        assert "tiny" in result.describe()


class TestModes:
    def test_simulation_mode_has_no_monitor_noise(self):
        sim = HybridMemoryPlatform(EmulationMode.SIMULATION)
        result = sim.run(tiny_factory(), collector="KG-N")
        assert result.monitor_rates_mbs == []
        assert "monitor" not in result.per_tag_dram_writes

    def test_emulation_mode_reports_monitor_series(self):
        emu = HybridMemoryPlatform(EmulationMode.EMULATION,
                                   monitor_interval_rounds=2)
        result = emu.run(tiny_factory(), collector="KG-N")
        assert result.monitor_rates_mbs

    def test_modes_agree_on_trend(self):
        emu = HybridMemoryPlatform(EmulationMode.EMULATION)
        sim = HybridMemoryPlatform(EmulationMode.SIMULATION)
        factory = tiny_factory(ops=6000, alloc_per_op=2.5)
        emu_red = (emu.run(factory, "PCM-Only").pcm_write_lines
                   - emu.run(factory, "KG-W").pcm_write_lines)
        sim_red = (sim.run(factory, "PCM-Only").pcm_write_lines
                   - sim.run(factory, "KG-W").pcm_write_lines)
        assert emu_red > 0 and sim_red > 0

    def test_llc_override(self):
        small_llc = HybridMemoryPlatform(EmulationMode.SIMULATION,
                                         llc_size_override=64 * 1024)
        default = HybridMemoryPlatform(EmulationMode.SIMULATION)
        factory = tiny_factory()
        more = small_llc.run(factory, "PCM-Only").pcm_write_lines
        fewer = default.run(factory, "PCM-Only").pcm_write_lines
        assert more > fewer  # smaller LLC absorbs fewer writes


class TestNative:
    def test_native_apps_require_pcm_only(self):
        from repro.workloads.registry import benchmark_factory
        platform = HybridMemoryPlatform(EmulationMode.EMULATION)
        with pytest.raises(ValueError):
            platform.run(benchmark_factory("pr.cpp"), collector="KG-N")

    def test_heap_budget_carving(self, platform):
        # KG-B's 3x nursery comes out of the same total heap.
        result = platform.run(tiny_factory(), collector="KG-B")
        assert result.pcm_write_lines >= 0  # runs without OOM


class TestWearTracking:
    def test_wear_fields_absent_by_default(self, platform):
        result = platform.run(tiny_factory(), collector="PCM-Only")
        assert result.wear_efficiency is None
        assert result.wear_imbalance is None

    def test_wear_fields_present_when_tracking(self):
        tracking = HybridMemoryPlatform(EmulationMode.EMULATION,
                                        track_wear=True)
        result = tracking.run(tiny_factory(), collector="PCM-Only")
        assert result.wear_imbalance >= 1.0
        assert 0.0 < result.wear_efficiency <= 1.0


class TestScalePlumbing:
    def test_platform_scale_reaches_registry_apps(self):
        from repro.config import ScaleConfig
        from repro.workloads.registry import benchmark_factory
        small = HybridMemoryPlatform(EmulationMode.SIMULATION,
                                     scale=ScaleConfig(scale=256))
        result = small.run(benchmark_factory("fop"), collector="KG-N")
        assert result.pcm_write_lines >= 0

    def test_plain_factories_still_work(self):
        # Factories without a scale parameter are called without one.
        platform = HybridMemoryPlatform(EmulationMode.SIMULATION)
        result = platform.run(tiny_factory(), collector="KG-N")
        assert result.benchmark == "tiny"
