"""Tests for GenImmix and the Kingsguard collector family."""

import pytest

from repro.core.collectors import (
    ALL_COLLECTOR_NAMES,
    GenImmixCollector,
    KingsguardCollector,
    collector_config,
    create_collector,
    space_socket_table,
)

from tests.conftest import build_test_vm


class TestConfigs:
    def test_all_configurations_exist(self):
        # The paper's eight, plus the Crystal Gazer extension.
        assert set(ALL_COLLECTOR_NAMES) == {
            "PCM-Only", "KG-N", "KG-B", "KG-N+LOO", "KG-B+LOO",
            "KG-W", "KG-W-LOO", "KG-W-MDO", "KG-CG",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            collector_config("KG-X")

    def test_pcm_only_binds_everything_to_pcm(self):
        config = collector_config("PCM-Only")
        assert not config.nursery_in_dram
        assert not config.boot_in_dram
        assert config.thread_socket == 1

    def test_kg_collectors_run_on_socket0(self):
        for name in ALL_COLLECTOR_NAMES:
            if name != "PCM-Only":
                assert collector_config(name).thread_socket == 0

    def test_kgb_nursery_is_3x(self):
        assert collector_config("KG-B").nursery_factor == 3
        assert collector_config("KG-N").nursery_factor == 1

    def test_kgw_has_observer_and_dram_spaces(self):
        config = collector_config("KG-W")
        assert config.has_observer
        assert config.dram_mature and config.dram_los
        assert config.mdo and config.loo

    def test_kgw_ablations(self):
        assert not collector_config("KG-W-LOO").loo
        assert collector_config("KG-W-LOO").mdo
        assert not collector_config("KG-W-MDO").mdo
        assert collector_config("KG-W-MDO").loo

    def test_factory_classes(self):
        assert isinstance(create_collector("PCM-Only"), GenImmixCollector)
        assert isinstance(create_collector("KG-W"), KingsguardCollector)

    def test_table1_rendering(self):
        text = space_socket_table(["KG-N", "KG-W", "KG-W-MDO"])
        assert "Nursery" in text and "Metadata" in text


class TestHeapConstruction:
    def test_kgn_spaces(self):
        vm = build_test_vm("KG-N")
        names = set(vm.heap.spaces)
        assert "observer" not in names
        assert "mature.dram" not in names
        assert {"nursery", "boot", "mature.pcm", "large.pcm"} <= names

    def test_kgw_spaces(self):
        vm = build_test_vm("KG-W")
        names = set(vm.heap.spaces)
        assert {"observer", "mature.dram", "large.dram"} <= names

    def test_pcm_only_nursery_on_pcm_node(self):
        vm = build_test_vm("PCM-Only")
        assert vm.nursery.node == 1
        assert vm.boot.node == 1

    def test_kgn_nursery_on_dram_node(self):
        vm = build_test_vm("KG-N")
        assert vm.nursery.node == 0
        assert vm.heap.space("mature.pcm").node == 1

    def test_mdo_metadata_placement(self):
        with_mdo = build_test_vm("KG-W")
        without = build_test_vm("KG-W-MDO")
        assert with_mdo.heap.space("metadata.pcm").node == 0
        assert without.heap.space("metadata.pcm").node == 1


class TestMinorCollection:
    def test_reachable_objects_survive(self, kgn_vm):
        ctx = kgn_vm.mutator()
        obj = ctx.alloc(scalar_bytes=32, num_refs=1)
        child = ctx.alloc(scalar_bytes=32)
        ctx.write_ref(obj, 0, child)
        ctx.add_root(obj)
        kgn_vm.minor_collect()
        assert obj.space == "mature.pcm"
        assert child.space == "mature.pcm"
        assert obj.refs[0] is child

    def test_unreachable_objects_die(self, kgn_vm):
        ctx = kgn_vm.mutator()
        ctx.alloc(scalar_bytes=32)
        kgn_vm.minor_collect()
        assert kgn_vm.stats.objects_promoted == 0
        assert kgn_vm.nursery.objects == []

    def test_remset_keeps_young_referent_alive(self, kgn_vm):
        ctx = kgn_vm.mutator()
        old = ctx.alloc(scalar_bytes=16, num_refs=1)
        ctx.add_root(old)
        kgn_vm.minor_collect()
        young = ctx.alloc(scalar_bytes=16)
        ctx.write_ref(old, 0, young)
        root_index = 0
        kgn_vm.roots[root_index] = old  # old stays rooted
        kgn_vm.minor_collect()
        assert young.space == "mature.pcm"

    def test_nursery_reset_after_collection(self, kgn_vm):
        ctx = kgn_vm.mutator()
        obj = ctx.alloc(scalar_bytes=32)
        ctx.add_root(obj)
        kgn_vm.minor_collect()
        assert kgn_vm.nursery.bytes_used == 0

    def test_large_nursery_survivor_promotes_to_los(self, vm):
        # KG-W: LOO large objects that survive tenure into the PCM LOS.
        ctx = vm.mutator()
        obj = ctx.alloc(scalar_bytes=vm.nursery.size // 16, large=True)
        ctx.add_root(obj)
        vm.minor_collect()
        assert obj.space == "large.pcm"


class TestObserverCollection:
    def test_written_objects_tenure_to_dram_mature(self, vm):
        ctx = vm.mutator()
        written = ctx.alloc(scalar_bytes=32)
        unwritten = ctx.alloc(scalar_bytes=32)
        ctx.add_root(written)
        ctx.add_root(unwritten)
        vm.minor_collect()
        assert written.space == "observer"
        ctx.write_scalar(written)
        vm.collector.minor_collect(vm, force_observer=True)
        assert written.space == "mature.dram"
        assert unwritten.space == "mature.pcm"

    def test_dead_observer_objects_not_tenured(self, vm):
        ctx = vm.mutator()
        obj = ctx.alloc(scalar_bytes=32)
        index = ctx.add_root(obj)
        vm.minor_collect()
        ctx.clear_root(index)
        vm.collector.minor_collect(vm, force_observer=True)
        assert vm.stats.observer_collections == 1
        assert obj.space == "observer"  # stale; the object was dropped
        assert obj not in list(vm.heap.space("mature.pcm").live_objects())


class TestFullCollection:
    def test_dead_mature_objects_swept(self, kgn_vm):
        ctx = kgn_vm.mutator()
        live = ctx.alloc(scalar_bytes=32)
        dead = ctx.alloc(scalar_bytes=32)
        live_root = ctx.add_root(live)
        dead_root = ctx.add_root(dead)
        kgn_vm.minor_collect()
        ctx.clear_root(dead_root)
        kgn_vm.full_collect()
        mature = list(kgn_vm.heap.space("mature.pcm").live_objects())
        assert live in mature
        assert dead not in mature
        assert kgn_vm.stats.full_gcs == 1

    def test_marking_writes_metadata(self, kgn_vm):
        ctx = kgn_vm.mutator()
        obj = ctx.alloc(scalar_bytes=32)
        ctx.add_root(obj)
        kgn_vm.minor_collect()
        node = kgn_vm.kernel.machine.nodes[1]
        kgn_vm.full_collect()
        kgn_vm.kernel.machine.flush_all(
            [t.core_path for t in kgn_vm.gc_threads])
        assert node.writes_by_tag.get("metadata.pcm", 0) >= 1

    def test_cycle_of_garbage_collected(self, kgn_vm):
        ctx = kgn_vm.mutator()
        a = ctx.alloc(scalar_bytes=16, num_refs=1)
        b = ctx.alloc(scalar_bytes=16, num_refs=1)
        ctx.write_ref(a, 0, b)
        ctx.write_ref(b, 0, a)
        index = ctx.add_root(a)
        kgn_vm.minor_collect()
        ctx.clear_root(index)
        kgn_vm.full_collect()
        mature = list(kgn_vm.heap.space("mature.pcm").live_objects())
        assert a not in mature and b not in mature

    def test_dead_large_objects_swept(self, kgn_vm):
        ctx = kgn_vm.mutator()
        from repro.runtime.objectmodel import LOS_THRESHOLD
        obj = ctx.alloc(scalar_bytes=LOS_THRESHOLD + 64)
        index = ctx.add_root(obj)
        ctx.clear_root(index)
        kgn_vm.full_collect()
        assert obj not in list(
            kgn_vm.heap.space("large.pcm").live_objects())


class TestLargeObjectMigration:
    def test_written_pcm_large_migrates_to_dram(self, vm):
        ctx = vm.mutator()
        from repro.runtime.objectmodel import LOS_THRESHOLD
        obj = ctx.alloc(scalar_bytes=8 * LOS_THRESHOLD)  # too big for LOO
        assert obj.space == "large.pcm"
        ctx.add_root(obj)
        for _ in range(vm.collector.LARGE_MIGRATION_WRITES):
            ctx.write_scalar(obj)
        vm.full_collect()
        assert obj.space == "large.dram"
        assert vm.stats.large_migrations == 1

    def test_unwritten_pcm_large_stays(self, vm):
        ctx = vm.mutator()
        from repro.runtime.objectmodel import LOS_THRESHOLD
        obj = ctx.alloc(scalar_bytes=8 * LOS_THRESHOLD)
        ctx.add_root(obj)
        vm.full_collect()
        assert obj.space == "large.pcm"

    def test_kgn_never_migrates(self, kgn_vm):
        ctx = kgn_vm.mutator()
        from repro.runtime.objectmodel import LOS_THRESHOLD
        obj = ctx.alloc(scalar_bytes=8 * LOS_THRESHOLD)
        ctx.add_root(obj)
        for _ in range(8):
            ctx.write_scalar(obj)
        kgn_vm.full_collect()
        assert obj.space == "large.pcm"
        assert kgn_vm.stats.large_migrations == 0
