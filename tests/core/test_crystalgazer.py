"""Tests for the Crystal Gazer profile-driven collector (extension)."""

import pytest

from repro.core.collectors import (
    CrystalGazerCollector,
    WriteProfile,
    collector_config,
    create_collector,
)

from tests.conftest import build_test_vm


class TestConfig:
    def test_layout_is_kgw_without_observer(self):
        config = collector_config("KG-CG")
        assert not config.has_observer
        assert config.dram_mature and config.dram_los
        assert config.mdo and config.loo

    def test_factory(self):
        assert isinstance(create_collector("KG-CG"), CrystalGazerCollector)


class TestWriteProfile:
    def test_context_key_buckets(self):
        profile = WriteProfile()
        assert profile.context_key(40, 2, False) == \
            profile.context_key(50, 2, False)
        assert profile.context_key(40, 2, False) != \
            profile.context_key(400, 2, False)

    def test_writes_per_object(self):
        profile = WriteProfile()

        class FakeObj:
            context = (1, 0, False)
        obj = FakeObj()
        profile.allocations[obj.context] = 4
        profile.note_write(obj)
        profile.note_write(obj)
        assert profile.writes_per_object(obj.context) == 0.5
        assert profile.predicts_written(obj)

    def test_unknown_context_not_predicted(self):
        profile = WriteProfile()

        class FakeObj:
            context = None
        assert not profile.predicts_written(FakeObj())


class TestCollectorBehaviour:
    def test_vm_attaches_profiler(self):
        vm = build_test_vm("KG-CG")
        assert vm.write_profiler is vm.collector.profile
        assert not vm.monitoring_overhead  # no online monitoring cost

    def test_allocations_are_tagged(self):
        vm = build_test_vm("KG-CG")
        ctx = vm.mutator()
        obj = ctx.alloc(scalar_bytes=64, num_refs=1)
        assert obj.context is not None
        assert vm.collector.profile.allocations[obj.context] >= 1

    def test_written_context_tenures_to_dram(self):
        vm = build_test_vm("KG-CG")
        ctx = vm.mutator()
        # Train the profile: objects of this shape get written a lot.
        for _ in range(20):
            hot = ctx.alloc(scalar_bytes=200, num_refs=0)
            for _ in range(3):
                ctx.write_scalar(hot)
        survivor = ctx.alloc(scalar_bytes=200, num_refs=0)
        ctx.add_root(survivor)
        vm.minor_collect()
        assert survivor.space == "mature.dram"

    def test_unwritten_context_tenures_to_pcm(self):
        vm = build_test_vm("KG-CG")
        ctx = vm.mutator()
        for _ in range(20):
            ctx.alloc(scalar_bytes=48, num_refs=0)  # never written
        survivor = ctx.alloc(scalar_bytes=48, num_refs=0)
        ctx.add_root(survivor)
        vm.minor_collect()
        assert survivor.space == "mature.pcm"

    def test_prediction_adapts_to_profile(self):
        vm = build_test_vm("KG-CG")
        ctx = vm.mutator()
        profile = vm.collector.profile
        cold = ctx.alloc(scalar_bytes=48)
        assert not profile.predicts_written(cold)
        for _ in range(2):
            ctx.write_scalar(cold)
        again = ctx.alloc(scalar_bytes=48)
        assert profile.predicts_written(again)
