"""Partial-run hygiene: a failed measurement must clean up after itself.

``HybridMemoryPlatform.run`` builds processes, maps frames, subscribes
the wear tracker to the write stream, and starts a monitor process.  If
an iteration dies mid-run (a page fault, an app bug, heap exhaustion),
all of that must still be torn down — otherwise a sweep that hits one
bad configuration leaks frames and listeners into every later run.
"""

import pytest

from repro.core.platform import (
    EmulationMode,
    HybridMemoryPlatform,
    PlatformTeardownError,
)
from repro.faults import FAULTS, FaultError, FaultPlan
from repro.kernel.pagetable import PageFault
from repro.workloads.base import BenchmarkApp


@pytest.fixture(autouse=True)
def no_fault_plan():
    FAULTS.uninstall()
    yield
    FAULTS.uninstall()


class FaultingApp(BenchmarkApp):
    """Runs a clean warm-up, then page-faults in the measured pass."""

    #: Unmapped virtual address, far above any heap mapping.
    WILD_ADDRESS = 0x7000000000

    def __init__(self, index, fail_in="measured"):
        super().__init__("faulting", heap_budget=512 * 1024,
                         nursery_size=64 * 1024, app_threads=2)
        self.fail_in = fail_in
        self.iterations = 0
        if fail_in == "setup":
            raise RuntimeError("injected setup failure")

    def iteration(self, ctx):
        self.iterations += 1
        faulting = self.fail_in == "measured" and self.iterations >= 2
        for _ in range(8):
            obj = ctx.alloc(64, 2)
            ctx.write_scalar(obj, 0)
            yield
        if faulting:
            ctx.thread.access(self.WILD_ADDRESS, 8, True)
        yield


def _assert_clean(platform):
    kernel = platform.debug_last_kernel
    machine = kernel.machine
    for node in machine.nodes:
        assert node.frames_in_use == 0, (
            f"node {node.node_id} leaked {node.frames_in_use} frames")
    assert kernel.processes == [], "processes left in the process table"
    assert machine.write_listeners == [], "write listener left attached"


def test_page_fault_during_measured_iteration_leaks_nothing():
    platform = HybridMemoryPlatform(mode=EmulationMode.EMULATION,
                                    track_wear=True)
    with pytest.raises(PageFault):
        platform.run(lambda index: FaultingApp(index), collector="KG-N",
                     instances=1)
    _assert_clean(platform)


def test_setup_failure_releases_already_built_instances():
    platform = HybridMemoryPlatform(mode=EmulationMode.EMULATION)

    def factory(index):
        # Instance 0 builds fine; instance 1 dies during construction,
        # after instance 0's VM has already mapped its heap.
        return FaultingApp(index, fail_in="setup" if index else "measured")

    with pytest.raises(RuntimeError, match="injected setup failure"):
        platform.run(factory, collector="KG-N", instances=2)
    _assert_clean(platform)


def test_page_fault_counted_and_fault_propagates_unwrapped():
    platform = HybridMemoryPlatform(mode=EmulationMode.SIMULATION)
    with pytest.raises(PageFault) as excinfo:
        platform.run(lambda index: FaultingApp(index), collector="KG-N")
    assert excinfo.value.vaddr == FaultingApp.WILD_ADDRESS
    assert platform.debug_last_kernel.page_faults >= 1
    _assert_clean(platform)


def test_successful_run_still_tears_down_completely():
    platform = HybridMemoryPlatform(mode=EmulationMode.EMULATION,
                                    track_wear=True)

    class CleanApp(FaultingApp):
        def __init__(self, index):
            super().__init__(index, fail_in="never")

    result = platform.run(lambda index: CleanApp(index), collector="KG-N")
    assert result.wear_efficiency is not None
    _assert_clean(platform)


class CleanApp(FaultingApp):
    def __init__(self, index):
        super().__init__(index, fail_in="never")


def test_failing_middle_shutdown_does_not_skip_remaining_steps():
    """One VM's shutdown raising must not leave its neighbours (or the
    monitor, or the wear tracker) attached: every teardown step runs,
    and the collected errors surface as a PlatformTeardownError."""
    platform = HybridMemoryPlatform(mode=EmulationMode.EMULATION,
                                    track_wear=True)
    # The hook sits after the VM's own frame release, so the second of
    # the three VM shutdowns fails mid-teardown-list.
    plan = FaultPlan().add("runtime.shutdown", at=2)
    with FAULTS.installed(plan):
        with pytest.raises(PlatformTeardownError) as excinfo:
            platform.run(lambda index: CleanApp(index), collector="KG-N",
                         instances=3)
    assert len(excinfo.value.errors) == 1
    assert isinstance(excinfo.value.errors[0], FaultError)
    _assert_clean(platform)


def test_teardown_error_never_masks_the_body_exception():
    platform = HybridMemoryPlatform(mode=EmulationMode.EMULATION)
    plan = FaultPlan().add("runtime.shutdown", times=-1)
    with FAULTS.installed(plan):
        with pytest.raises(PageFault):
            platform.run(lambda index: FaultingApp(index), collector="KG-N")
    _assert_clean(platform)


def test_every_failing_shutdown_is_collected():
    platform = HybridMemoryPlatform(mode=EmulationMode.EMULATION)
    plan = FaultPlan().add("runtime.shutdown", times=-1)
    with FAULTS.installed(plan):
        with pytest.raises(PlatformTeardownError) as excinfo:
            platform.run(lambda index: CleanApp(index), collector="KG-N",
                         instances=2)
    assert len(excinfo.value.errors) == 2
    _assert_clean(platform)
