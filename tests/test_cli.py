"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_benchmarks_and_collectors(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "lusearch" in out
        assert "pr.cpp" in out
        assert "KG-W" in out


class TestDescribe:
    def test_describes_platform(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "Socket 0 = DRAM" in out
        assert "140" in out  # recommended write rate


class TestRun:
    def test_run_prints_measurement(self, capsys):
        assert main(["run", "-b", "fop", "-c", "KG-N"]) == 0
        out = capsys.readouterr().out
        assert "fop" in out and "PCM" in out and "GC:" in out

    def test_bad_collector_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "-c", "KG-XYZ"])


class TestReproduce:
    def test_reproduce_table1(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["reproduce", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_experiment_lists_sorted_names(self, capsys):
        from repro.experiments import EXPERIMENTS

        assert main(["reproduce", "table99"]) == 2
        err = capsys.readouterr().err
        assert ", ".join(sorted(EXPERIMENTS)) in err
        assert "'all'" in err
        # The raw container repr must not leak into the message.
        assert "[" not in err


class TestRunJson:
    def test_json_report_is_machine_readable(self, capsys):
        assert main(["run", "-b", "fop", "-c", "KG-W", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"].startswith("repro.run_report/")
        assert report["benchmark"] == "fop"
        sockets = {s["node"]: s for s in report["sockets"]}
        for node in (0, 1):
            assert "read_lines" in sockets[node]
            assert "write_lines" in sockets[node]
            assert "hit_rate" in sockets[node]["llc"]
        assert report["gc"]["phases"], "expected GC phase spans"
        assert all(p["name"].startswith("gc.") for p in report["gc"]["phases"])
        assert report["wall_time"]["host_seconds"] > 0
        assert report["wall_time"]["emulated_seconds"] > 0

    def test_json_run_leaves_tracer_disabled(self, capsys):
        from repro.observability.trace import TRACER

        assert main(["run", "-b", "fop", "-c", "KG-N", "--json"]) == 0
        capsys.readouterr()
        assert TRACER.enabled is False


class TestProfile:
    def test_table_is_default_format(self, capsys):
        assert main(["profile", "-b", "fop", "-c", "KG-W"]) == 0
        out = capsys.readouterr().out
        assert "Write attribution" in out
        assert "path" in out and "pcm.writes" in out

    def test_chrome_format_is_valid_trace_json(self, capsys):
        assert main(["profile", "-b", "fop", "-c", "KG-W",
                     "--format", "chrome"]) == 0
        trace = json.loads(capsys.readouterr().out)
        assert trace["traceEvents"]
        for event in trace["traceEvents"]:
            for key in ("ph", "ts", "dur", "pid", "tid", "name"):
                assert key in event

    def test_folded_format_round_trips(self, capsys):
        from repro.observability.profile import parse_folded

        assert main(["profile", "-b", "fop", "-c", "KG-W",
                     "--format", "folded", "--counter",
                     "dram.writes"]) == 0
        stacks = parse_folded(capsys.readouterr().out)
        assert stacks and all(count > 0 for count in stacks.values())

    def test_out_writes_file(self, tmp_path, capsys):
        path = tmp_path / "prof.json"
        assert main(["profile", "-b", "fop", "-c", "KG-W",
                     "--format", "chrome", "--out", str(path)]) == 0
        assert "wrote chrome profile" in capsys.readouterr().out
        json.loads(path.read_text())

    def test_profile_restores_observability_state(self, capsys):
        from repro.observability.profile import PROFILER
        from repro.observability.trace import TRACER

        assert main(["profile", "-b", "fop", "-c", "KG-W"]) == 0
        capsys.readouterr()
        assert TRACER.enabled is False
        assert PROFILER.enabled is False

    def test_by_space_view(self, capsys):
        assert main(["profile", "-b", "fop", "-c", "KG-W",
                     "--by", "space"]) == 0
        out = capsys.readouterr().out
        assert "tag" in out


class TestTrace:
    def test_trace_exports_parseable_spans(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        assert main(["trace", "table1", "--out", str(out)]) == 0
        assert "table1" in capsys.readouterr().out
        for line in out.read_text().splitlines():
            json.loads(line)

    def test_trace_writes_span_per_run(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        assert main(["trace", "writes_breakdown", "--out", str(out)]) == 0
        capsys.readouterr()
        records = [json.loads(line)
                   for line in out.read_text().splitlines()]
        runs = [r for r in records
                if r["type"] == "span" and r["name"] == "runner.run"]
        # writes_breakdown measures lusearch at 1, 2, and 4 instances.
        assert len(runs) == 3

    def test_trace_unknown_experiment(self, capsys):
        assert main(["trace", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_trace_rejects_nonpositive_capacity(self, capsys):
        assert main(["trace", "table1", "--capacity", "0"]) == 2
        assert "--capacity must be positive" in capsys.readouterr().err

    def test_trace_unwritable_output_path(self, tmp_path, capsys):
        out = tmp_path / "no-such-dir" / "t.jsonl"
        assert main(["trace", "table1", "--out", str(out)]) == 1
        assert "cannot write trace" in capsys.readouterr().err


class TestStats:
    def test_stats_renders_registry_table(self, capsys):
        assert main(["stats", "-b", "fop", "-c", "KG-N"]) == 0
        out = capsys.readouterr().out
        assert "Metrics registry:" in out
        assert "machine.socket0.llc.hits" in out
        assert "kernel.mmap_calls" in out
        assert "gc.kgn.minor_collections" in out


class TestSanitize:
    def test_clean_fuzz_exits_zero(self, capsys):
        assert main(["sanitize", "--seed", "0", "--ops", "500"]) == 0
        out = capsys.readouterr().out
        assert "seed 0: OK" in out
        assert "0 failing" in out

    def test_json_output_per_trial(self, capsys):
        assert main(["sanitize", "--ops", "200", "--trials", "2",
                     "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        reports = [json.loads(line) for line in lines]
        assert [r["seed"] for r in reports] == [0, 1]
        assert all(r["ok"] for r in reports)

    def test_planted_bug_fails_and_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "divergence.jsonl"
        assert main(["sanitize", "--ops", "500", "--plant", "short-block",
                     "--out", str(out)]) == 1
        text = capsys.readouterr().out
        assert "divergence at seed 0" in text
        assert out.exists()
        trace = [json.loads(line) for line in out.read_text().splitlines()]
        assert 1 <= len(trace) <= 25
        assert all("kind" in op for op in trace)

    def test_planted_sanitizer_bug_reports_violations(self, capsys):
        assert main(["sanitize", "--ops", "400", "--plant",
                     "lost-writeback"]) == 1
        text = capsys.readouterr().out
        assert "write_conservation" in text

    def test_usage_errors_exit_two(self, capsys):
        assert main(["sanitize", "--ops", "0"]) == 2
        assert main(["sanitize", "--trials", "0"]) == 2
        assert main(["sanitize", "--check-every", "-1"]) == 2
        assert main(["sanitize", "--plant", "heisenbug"]) == 2
        err = capsys.readouterr().err
        assert "--ops must be positive" in err
        assert "unknown planted bug" in err

    def test_no_shrink_keeps_full_trace(self, capsys):
        assert main(["sanitize", "--ops", "300", "--plant", "short-block",
                     "--no-shrink", "--json", "--out",
                     "/dev/null"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["divergence"]["predicate_evals"] == 0
        assert len(report["divergence"]["shrunk"]) == 300
