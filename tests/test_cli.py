"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_benchmarks_and_collectors(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "lusearch" in out
        assert "pr.cpp" in out
        assert "KG-W" in out


class TestDescribe:
    def test_describes_platform(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "Socket 0 = DRAM" in out
        assert "140" in out  # recommended write rate


class TestRun:
    def test_run_prints_measurement(self, capsys):
        assert main(["run", "-b", "fop", "-c", "KG-N"]) == 0
        out = capsys.readouterr().out
        assert "fop" in out and "PCM" in out and "GC:" in out

    def test_bad_collector_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "-c", "KG-XYZ"])


class TestReproduce:
    def test_reproduce_table1(self, capsys):
        assert main(["reproduce", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["reproduce", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err
