"""Tests for the synthetic mutator model."""

import pytest

from repro.config import KB, MB, scaled
from repro.workloads.base import BenchmarkApp, SyntheticApp, WorkloadProfile

from tests.conftest import build_test_vm


def make_app(ops=400, nursery=16 * KB, **kwargs):
    profile = WorkloadProfile(ops=ops, quantum=32, **kwargs)
    return SyntheticApp("test-app", "dacapo", profile,
                        heap_budget=16 * nursery, nursery_size=nursery,
                        app_threads=2, seed=11)


def drive(app, vm):
    ctx = vm.mutator()
    app.setup(ctx)
    for _ in app.iteration(ctx):
        pass
    return ctx


class TestSetup:
    def test_working_set_scales_with_heap(self):
        small = make_app()
        big = SyntheticApp("big", "dacapo", WorkloadProfile(),
                           heap_budget=scaled(200 * MB),
                           nursery_size=scaled(4 * MB))
        assert big.num_tables > small.num_tables

    def test_live_fraction_scales_tables(self):
        lean = make_app(live_fraction=0.1)
        fat = make_app(live_fraction=0.5)
        assert fat.num_tables > lean.num_tables

    def test_setup_builds_rooted_tables(self):
        vm = build_test_vm("KG-N")
        app = make_app()
        ctx = vm.mutator()
        app.setup(ctx)
        assert len(app._tables) == app.num_tables
        rooted = {id(r) for r in vm.roots if r is not None}
        assert all(id(t) in rooted for t in app._tables)

    def test_medium_tables_sized_from_nursery(self):
        short = make_app(nursery=8 * KB)
        long = make_app(nursery=64 * KB)
        assert long.num_medium_tables >= short.num_medium_tables


class TestIteration:
    def test_iteration_yields_every_quantum(self):
        vm = build_test_vm("KG-N")
        app = make_app(ops=128)
        ctx = vm.mutator()
        app.setup(ctx)
        yields = sum(1 for _ in app.iteration(ctx))
        assert yields == 128 // 32

    def test_iteration_allocates_and_mutates(self):
        vm = build_test_vm("KG-N")
        app = make_app(ops=600, alloc_per_op=2.0)
        mark = vm.stats.copy()
        drive(app, vm)
        delta = vm.stats.snapshot_delta(mark)
        assert delta.objects_allocated > 1000

    def test_two_iterations_supported(self):
        # Replay compilation runs the iteration twice on one instance.
        vm = build_test_vm("KG-N")
        app = make_app(ops=300)
        ctx = vm.mutator()
        app.setup(ctx)
        for _ in app.iteration(ctx):
            pass
        for _ in app.iteration(ctx):
            pass
        assert vm.stats.objects_allocated > 0

    def test_large_allocation_path(self):
        vm = build_test_vm("KG-N")
        app = make_app(ops=400, large_alloc_per_op=0.05,
                       large_sizes=(4 * KB,))
        drive(app, vm)
        los = vm.heap.space("large.pcm")
        assert los.bytes_committed > 0 or vm.stats.objects_promoted >= 0

    def test_survivors_promoted_under_gc(self):
        vm = build_test_vm("KG-N", nursery=8 * KB)
        app = make_app(ops=1500, nursery=8 * KB, alloc_per_op=2.0,
                       survival_rate=0.2)
        drive(app, vm)
        assert vm.stats.minor_gcs > 0
        assert vm.stats.objects_promoted > 0


class TestBaseClass:
    def test_iteration_abstract(self):
        app = BenchmarkApp("x", 1024, 1024)
        with pytest.raises(NotImplementedError):
            next(app.iteration(None))
