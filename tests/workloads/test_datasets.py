"""Tests for the synthetic dataset generators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.datasets import (
    NETFLIX_ITEMS,
    NETFLIX_USERS,
    generate_graph,
    generate_ratings,
    scaled_count,
)


class TestGraph:
    def test_edge_count(self):
        graph = generate_graph(1000, seed=1)
        assert graph.num_edges == 1000
        assert sum(len(adj) for adj in graph.adjacency) == 1000

    def test_deterministic_per_seed(self):
        a = generate_graph(500, seed=42)
        b = generate_graph(500, seed=42)
        assert a.adjacency == b.adjacency

    def test_different_seeds_differ(self):
        a = generate_graph(500, seed=1)
        b = generate_graph(500, seed=2)
        assert a.adjacency != b.adjacency

    def test_power_law_hubs(self):
        graph = generate_graph(5000, seed=3)
        degrees = sorted((len(adj) for adj in graph.adjacency),
                         reverse=True)
        # The top vertex vastly out-degrees the median (skew).
        assert degrees[0] > 10 * max(1, degrees[len(degrees) // 2])

    def test_targets_in_range(self):
        graph = generate_graph(1000, seed=4)
        for adj in graph.adjacency:
            for dst in adj:
                assert 0 <= dst < graph.num_vertices


class TestRatings:
    def test_rating_count(self):
        ratings = generate_ratings(1000, seed=1)
        assert ratings.num_ratings == 1000

    def test_population_capped_at_netflix_scale(self):
        ratings = generate_ratings(1_000_000, seed=1)
        assert ratings.num_users == NETFLIX_USERS
        assert ratings.num_items == NETFLIX_ITEMS

    def test_pairs_in_range(self):
        ratings = generate_ratings(2000, seed=2)
        for user, item in ratings.pairs:
            assert 0 <= user < ratings.num_users
            assert 0 <= item < ratings.num_items

    def test_popular_item_skew(self):
        ratings = generate_ratings(20_000, seed=3)
        counts = [0] * ratings.num_items
        for _user, item in ratings.pairs:
            counts[item] += 1
        top_decile = sorted(counts, reverse=True)[:ratings.num_items // 10]
        assert sum(top_decile) > 0.2 * ratings.num_ratings


class TestScaledCount:
    def test_divides_by_scale(self):
        assert scaled_count(1_000_000, 64) == 15625

    def test_floor(self):
        assert scaled_count(10, 64) == 64  # never below the floor

    @given(st.integers(1, 10**8))
    @settings(max_examples=30)
    def test_positive(self, count):
        assert scaled_count(count) > 0
