"""Tests for the GraphChi workloads (Java and C++ variants)."""

import pytest

from repro.config import KB
from repro.kernel.vm import Kernel
from repro.native.runtime import NativeRuntime
from repro.workloads.graphchi import (
    AlsJavaApp,
    GraphChiCppApp,
    PageRankCppApp,
    PageRankJavaApp,
)
from repro.workloads.registry import benchmark_factory, benchmarks_in_suite

from tests.conftest import build_test_machine, build_test_vm


class TestRegistry:
    def test_java_suite(self):
        assert set(benchmarks_in_suite("graphchi")) == {"pr", "cc", "als"}

    def test_cpp_suite(self):
        assert set(benchmarks_in_suite("graphchi-cpp")) == {
            "pr.cpp", "cc.cpp", "als.cpp"}

    def test_cpp_apps_flagged_native(self):
        app = benchmark_factory("pr.cpp")(0)
        assert app.runtime == "native"
        assert isinstance(app, GraphChiCppApp)


class TestJavaApps:
    def make_vm(self):
        return build_test_vm("KG-W", nursery=32 * KB,
                             heap_budget=1024 * KB)

    def test_pagerank_builds_graph_and_runs(self):
        vm = self.make_vm()
        app = PageRankJavaApp("pr", seed=5, edges=800)
        ctx = vm.mutator()
        app.setup(ctx)
        assert len(app._vertices) == app.graph.num_vertices
        assert len(app._shards) == 16  # in + out shard per interval
        quanta = sum(1 for _ in app.iteration(ctx))
        assert quanta > 0

    def test_pagerank_writes_every_vertex(self):
        vm = self.make_vm()
        app = PageRankJavaApp("pr", seed=5, edges=800)
        ctx = vm.mutator()
        app.setup(ctx)
        writes_before = vm.stats.bytes_allocated
        for _ in app.iteration(ctx):
            pass
        assert vm.stats.bytes_allocated > writes_before

    def test_als_builds_factor_tables(self):
        vm = self.make_vm()
        app = AlsJavaApp("als", seed=5, edges=800)
        ctx = vm.mutator()
        app.setup(ctx)
        assert len(app._users) == app.ratings.num_users
        assert len(app._items) == app.ratings.num_items

    def test_shards_are_large_objects(self):
        vm = self.make_vm()
        app = PageRankJavaApp("pr", seed=5, edges=800)
        ctx = vm.mutator()
        app.setup(ctx)
        assert all(shard.is_large for shard in app._shards)


class TestCppApps:
    def make_runtime(self):
        kernel = Kernel(build_test_machine())
        return NativeRuntime(kernel, heap_bytes=4096 * KB, node=1,
                             thread_socket=1)

    def test_pagerank_cpp_runs(self):
        runtime = self.make_runtime()
        app = PageRankCppApp("pr.cpp", seed=5, edges=800)
        ctx = runtime.mutator()
        app.setup(ctx)
        quanta = sum(1 for _ in app.iteration(ctx))
        assert quanta > 0

    def test_cpp_allocates_nothing_persistent_in_iteration(self):
        runtime = self.make_runtime()
        app = PageRankCppApp("pr.cpp", seed=5, edges=800)
        ctx = runtime.mutator()
        app.setup(ctx)
        in_use_before = runtime.allocator.bytes_in_use
        for _ in app.iteration(ctx):
            pass
        # Windows are freed; only the bounded FIFOs (temp batch +
        # snapshot records) may remain.
        growth = runtime.allocator.bytes_in_use - in_use_before
        assert growth < 256 * KB

    def test_cpp_no_zeroing(self):
        runtime = self.make_runtime()
        ctx = runtime.mutator()
        before = ctx.thread.cycles
        ctx.malloc(8 * KB)
        # malloc touches only the header, not 8 KB.
        assert ctx.thread.cycles - before < 1000


class TestDatasets:
    def test_large_dataset_has_more_edges(self):
        default = benchmark_factory("pr")(0, dataset="default")
        large = benchmark_factory("pr")(0, dataset="large")
        assert large.edges == 10 * default.edges
        assert large.dataset == "large"
