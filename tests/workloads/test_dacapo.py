"""Tests for the DaCapo benchmark definitions."""

import pytest

from repro.workloads.dacapo import (
    LARGE_DATASET_BENCHMARKS,
    SIMULATABLE_BENCHMARKS,
    DaCapoApp,
)
from repro.workloads.registry import benchmark_factory, benchmarks_in_suite


class TestRegistry:
    def test_thirteen_benchmarks(self):
        names = benchmarks_in_suite("dacapo")
        assert len(names) == 13
        assert "lusearch" in names and "lu.Fix" in names
        assert "pmd" in names and "pmd.S" in names

    def test_simulatable_subset(self):
        assert len(SIMULATABLE_BENCHMARKS) == 7
        assert set(SIMULATABLE_BENCHMARKS) <= set(
            benchmarks_in_suite("dacapo"))

    def test_factory_produces_fresh_instances(self):
        factory = benchmark_factory("avrora")
        first = factory(0)
        second = factory(1)
        assert first is not second
        assert first.seed != second.seed

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            benchmark_factory("nonexistent")


class TestCharacter:
    def test_lusearch_allocates_most(self):
        lusearch = benchmark_factory("lusearch")(0)
        fop = benchmark_factory("fop")(0)
        assert lusearch.profile.alloc_per_op > fop.profile.alloc_per_op

    def test_lufix_removes_useless_allocation(self):
        lusearch = benchmark_factory("lusearch")(0)
        lufix = benchmark_factory("lu.Fix")(0)
        assert lufix.profile.alloc_per_op < lusearch.profile.alloc_per_op / 2

    def test_pmds_has_smaller_retained_set(self):
        pmd = benchmark_factory("pmd")(0)
        pmds = benchmark_factory("pmd.S")(0)
        assert pmds.num_tables < pmd.num_tables

    def test_all_use_four_threads_and_4mb_nursery(self):
        from repro.config import MB, scaled
        for name in benchmarks_in_suite("dacapo"):
            app = benchmark_factory(name)(0)
            assert app.app_threads == 4
            assert app.nursery_size == scaled(4 * MB)
            assert app.suite == "dacapo"


class TestDatasets:
    def test_large_dataset_increases_work(self):
        default = benchmark_factory("lusearch")(0, dataset="default")
        large = benchmark_factory("lusearch")(0, dataset="large")
        assert large.profile.ops > default.profile.ops
        assert large.heap_budget > default.heap_budget

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            benchmark_factory("lusearch")(0, dataset="huge")

    def test_large_regimes_differ(self):
        # Rate-flat apps only scale ops; compute-bound apps also raise
        # compute; working-set apps raise survival.
        flat = benchmark_factory("lusearch")(0, dataset="large")
        compute = benchmark_factory("fop")(0, dataset="large")
        retained = benchmark_factory("hsqldb")(0, dataset="large")
        base_flat = benchmark_factory("lusearch")(0)
        base_compute = benchmark_factory("fop")(0)
        base_retained = benchmark_factory("hsqldb")(0)
        assert flat.profile.compute_per_op == base_flat.profile.compute_per_op
        assert (compute.profile.compute_per_op
                > base_compute.profile.compute_per_op)
        assert (retained.profile.survival_rate
                > base_retained.profile.survival_rate)

    def test_large_dataset_list(self):
        assert set(LARGE_DATASET_BENCHMARKS) <= set(
            benchmarks_in_suite("dacapo"))
