"""Tests for the Pjbb workload."""

import pytest

from repro.config import KB
from repro.workloads.pjbb import PjbbApp
from repro.workloads.registry import benchmark_factory, benchmarks_in_suite

from tests.conftest import build_test_vm


class TestRegistration:
    def test_suite_has_single_benchmark(self):
        assert benchmarks_in_suite("pjbb") == ["pjbb"]

    def test_factory(self):
        app = benchmark_factory("pjbb")(0)
        assert isinstance(app, PjbbApp)
        assert app.suite == "pjbb"


class TestCharacter:
    def test_bigger_heap_than_typical_dacapo(self):
        pjbb = benchmark_factory("pjbb")(0)
        dacapo = benchmark_factory("fop")(0)
        assert pjbb.heap_budget > dacapo.heap_budget

    def test_high_survival(self):
        pjbb = benchmark_factory("pjbb")(0)
        lusearch = benchmark_factory("lusearch")(0)
        assert pjbb.profile.survival_rate > lusearch.profile.survival_rate

    def test_large_dataset(self):
        default = benchmark_factory("pjbb")(0)
        large = benchmark_factory("pjbb")(0, dataset="large")
        assert large.profile.ops > default.profile.ops
        assert large.heap_budget > default.heap_budget

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            PjbbApp(dataset="tiny")


class TestExecution:
    def test_runs_in_a_vm(self):
        from dataclasses import replace
        app = benchmark_factory("pjbb")(0)
        app.profile = replace(app.profile, ops=400)
        vm = build_test_vm("KG-W", nursery=16 * KB,
                           heap_budget=app.heap_budget)
        ctx = vm.mutator()
        app.setup(ctx)
        for _ in app.iteration(ctx):
            pass
        assert vm.stats.objects_allocated > 0
