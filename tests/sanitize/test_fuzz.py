"""Tests for the differential-oracle fuzzer."""

import pytest

from repro.config import PAGE_SIZE
from repro.sanitize.fuzz import (
    DRAM_BASE,
    PCM_BASE,
    PLANTED_BUGS,
    DifferentialFuzzer,
    TraceOp,
    diff_snapshots,
    generate_trace,
    planted_bug,
    read_trace_jsonl,
    replay,
    shrink_trace,
    write_trace_jsonl,
)


class TestTraceGeneration:
    def test_deterministic_for_a_seed(self):
        assert generate_trace(7, 300) == generate_trace(7, 300)

    def test_seeds_differ(self):
        assert generate_trace(1, 300) != generate_trace(2, 300)

    def test_requested_length(self):
        assert len(generate_trace(0, 123)) == 123

    def test_mix_covers_the_interesting_cases(self):
        trace = generate_trace(0, 2000)
        kinds = {op.kind for op in trace}
        assert kinds == {"access", "mmap", "munmap", "drain", "flush"}
        accesses = [op for op in trace if op.kind == "access"]
        # Page-straddling runs, both polarities, unaligned starts.
        assert any(op.size > PAGE_SIZE for op in accesses)
        assert any(op.is_write for op in accesses)
        assert any(not op.is_write for op in accesses)
        assert any(op.vaddr % 64 for op in accesses)
        assert any(op.thread == 2 for op in accesses)  # PCM-socket thread

    def test_trace_op_round_trips_through_dicts(self):
        op = TraceOp("access", thread=1, vaddr=0x1234, size=100,
                     is_write=True)
        assert TraceOp.from_dict(op.to_dict()) == op

    def test_trace_jsonl_round_trip(self, tmp_path):
        trace = generate_trace(3, 50)
        path = str(tmp_path / "trace.jsonl")
        assert write_trace_jsonl(path, trace) == 50
        assert read_trace_jsonl(path) == trace


class TestReplay:
    def test_engines_agree_on_a_clean_trace(self):
        trace = generate_trace(11, 600)
        batched, violations_b = replay(trace, "batched", check_every=64)
        oracle, violations_o = replay(trace, "oracle", check_every=64)
        assert diff_snapshots(batched, oracle) == []
        assert violations_b == [] and violations_o == []

    def test_faulting_ops_recorded_identically(self):
        trace = [
            TraceOp("access", vaddr=DRAM_BASE, size=64, is_write=True),
            TraceOp("access", vaddr=0x900000, size=64),  # unmapped hole
            TraceOp("mmap", vaddr=DRAM_BASE, pages=1, node=0),  # overlap
            TraceOp("munmap", vaddr=0x900000, pages=1),  # not mapped
            TraceOp("access", vaddr=PCM_BASE + 1, size=200,
                    is_write=True),
        ]
        batched, _ = replay(trace, "batched")
        oracle, _ = replay(trace, "oracle")
        assert diff_snapshots(batched, oracle) == []
        names = [entry[1] for entry in batched["exceptions"]]
        assert names == ["PageFault", "MBindError", "PageFault"]

    def test_unknown_engine_rejected(self):
        from repro.sanitize.fuzz import TraceReplayer

        with pytest.raises(ValueError):
            TraceReplayer("quantum")

    def test_snapshot_covers_both_sockets_and_the_kernel(self):
        snapshot, _ = replay(generate_trace(5, 200), "batched")
        assert {"node0.write_lines", "node1.write_lines", "llc0", "llc1",
                "qpi_crossings", "kernel"} <= set(snapshot)


class TestFuzzer:
    def test_clean_stack_fuzzes_clean(self):
        result = DifferentialFuzzer(ops=800).run_trial(0)
        assert result.ok
        assert result.divergence is None
        assert result.violations == []

    def test_multiple_trials_use_distinct_seeds(self):
        fuzzer = DifferentialFuzzer(ops=100, check_every=0)
        results = fuzzer.run(seed=40, trials=3)
        assert [r.seed for r in results] == [40, 41, 42]
        assert all(r.ok for r in results)

    def test_result_to_dict_is_json_ready(self):
        import json

        result = DifferentialFuzzer(ops=100, check_every=0).run_trial(0)
        assert json.loads(json.dumps(result.to_dict()))["ok"] is True

    def test_invalid_ops_rejected(self):
        with pytest.raises(ValueError):
            DifferentialFuzzer(ops=0)


class TestMigratePlacementFuzz:
    """The migrate policy under the differential oracle: ticks inserted
    into the trace, every engine migrating identically."""

    def test_tick_insertion_preserves_base_trace(self):
        base = generate_trace(9, 200)
        ticked = generate_trace(9, 200, tick_every=50)
        # Historical traces stay byte-identical; ticks are a post-pass.
        assert [op for op in ticked if op.kind != "tick"] == base
        assert sum(1 for op in ticked if op.kind == "tick") == 4

    def test_tick_every_zero_inserts_nothing(self):
        assert generate_trace(9, 200, tick_every=0) == generate_trace(9, 200)

    def test_engines_agree_under_migrate_with_ticks(self):
        trace = generate_trace(13, 800, tick_every=64)
        batched, violations_b = replay(trace, "batched", check_every=64,
                                       placement="migrate")
        oracle, violations_o = replay(trace, "oracle", check_every=64,
                                      placement="migrate")
        assert diff_snapshots(batched, oracle) == []
        assert violations_b == [] and violations_o == []

    def test_migrate_snapshot_tracks_migration_counters(self):
        trace = generate_trace(13, 800, tick_every=64)
        snapshot, _ = replay(trace, "batched", placement="migrate")
        assert "node0.migration_write_lines" in snapshot
        assert "node1.migration_write_lines" in snapshot
        # kernel tuple: (..., pages_migrated, migration_writes)
        pages_migrated, migration_writes = snapshot["kernel"][-2:]
        assert migration_writes == pages_migrated * (PAGE_SIZE // 64)

    def test_fuzzer_accepts_placement_and_ticks(self):
        fuzzer = DifferentialFuzzer(ops=600, check_every=64,
                                    placement="migrate", tick_every=48)
        result = fuzzer.run_trial(0)
        assert result.ok
        assert result.to_dict()["placement"] == "migrate"

    def test_fuzzer_rejects_bad_placement_and_tick(self):
        with pytest.raises(ValueError):
            DifferentialFuzzer(ops=100, placement="bogus")
        with pytest.raises(ValueError):
            DifferentialFuzzer(ops=100, tick_every=-1)


class TestPlantedBugs:
    def test_short_block_bug_is_caught_and_shrunk(self):
        with planted_bug("short-block"):
            result = DifferentialFuzzer(ops=800,
                                        check_every=0).run_trial(0)
        assert result.divergence is not None
        report = result.divergence
        # The acceptance bar: a planted counter bug must shrink to a
        # trace a human can replay by hand.
        assert len(report.shrunk) <= 25
        assert report.keys  # names the diverging counters
        # The shrunk trace must still reproduce outside the shrinker.
        with planted_bug("short-block"):
            batched, _ = replay(report.shrunk, "batched")
            oracle, _ = replay(report.shrunk, "oracle")
        assert diff_snapshots(batched, oracle)

    def test_short_block_report_describes_the_trace(self):
        with planted_bug("short-block"):
            result = DifferentialFuzzer(ops=400,
                                        check_every=0).run_trial(0)
        text = result.divergence.describe()
        assert "shrunk to" in text and "access" in text

    def test_lost_writeback_is_invisible_to_the_differential(self):
        # Both engines lose the same writes, so only the sanitizer's
        # write-conservation law can see this bug.
        with planted_bug("lost-writeback"):
            result = DifferentialFuzzer(ops=400).run_trial(0)
        assert result.divergence is None
        assert result.violations
        assert {v.law for v in result.violations} == {"write_conservation"}
        assert not result.ok

    def test_bugs_uninstall_cleanly(self):
        for name in PLANTED_BUGS:
            with planted_bug(name):
                pass
        result = DifferentialFuzzer(ops=300).run_trial(0)
        assert result.ok

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError):
            with planted_bug("heisenbug"):
                pass


class TestShrinking:
    def test_shrinks_to_the_single_culprit(self):
        # Only one op (the write) flips the fail bit; shrinking must
        # isolate it regardless of the noise around it.
        trace = [TraceOp("access", vaddr=DRAM_BASE + i * 64, size=8)
                 for i in range(20)]
        trace.insert(13, TraceOp("access", vaddr=DRAM_BASE, size=8,
                                 is_write=True))

        def fails(candidate):
            return any(op.is_write for op in candidate)

        shrunk, evals = shrink_trace(trace, fails)
        assert len(shrunk) == 1
        assert shrunk[0].is_write
        assert evals > 0

    def test_respects_the_eval_budget(self):
        trace = generate_trace(0, 256)
        calls = []

        def fails(candidate):
            calls.append(len(candidate))
            return True

        shrink_trace(trace, fails, max_evals=10)
        assert len(calls) <= 10

    def test_keeps_a_multi_op_dependency_together(self):
        # Failure needs the mmap *and* the access: neither alone.
        trace = generate_trace(9, 30)
        trace += [TraceOp("mmap", vaddr=0x700000, pages=1, node=1),
                  TraceOp("access", vaddr=0x700000, size=64,
                          is_write=True)]

        def fails(candidate):
            mapped = False
            for op in candidate:
                if op.kind == "mmap" and op.vaddr == 0x700000:
                    mapped = True
                if (op.kind == "access" and op.vaddr == 0x700000
                        and mapped):
                    return True
            return False

        shrunk, _ = shrink_trace(trace, fails)
        assert len(shrunk) == 2
