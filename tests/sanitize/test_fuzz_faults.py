"""Differential equivalence under fault injection (satellite of the
sanitizer PR): when a :class:`FaultPlan` fires mid-trace, the batched
and per-line engines must still report bit-identical counters *and*
identical fault behaviour — the plan is reinstalled with reset arrival
counts for each engine's replay, so the same kernel-op sequence meets
the same faults."""

import pytest

from repro.faults.plan import FAULTS, FaultPlan
from repro.sanitize.fuzz import (
    DifferentialFuzzer,
    TraceOp,
    diff_snapshots,
    generate_trace,
    replay,
)

SLOT = 0x400000  # first dynamic slot of the fuzz layout


def deterministic_mmap_plan(**kwargs):
    """Fail the 2nd trace mmap.  The replayer's two base-region mmaps
    run before the plan is installed, so they do not count arrivals —
    trace mmaps are arrivals 1, 2, ..."""
    return FaultPlan(seed=5).add("kernel.mmap_bind", at=2,
                                 error="frame_exhausted", **kwargs)


class TestDifferentialUnderFaults:
    def test_engines_agree_when_a_fault_fires_mid_trace(self):
        plan = deterministic_mmap_plan()
        trace = generate_trace(21, 600)
        batched, violations_b = replay(trace, "batched", fault_plan=plan,
                                       check_every=64)
        oracle, violations_o = replay(trace, "oracle", fault_plan=plan,
                                      check_every=64)
        assert diff_snapshots(batched, oracle) == []
        assert violations_b == [] and violations_o == []
        # The plan really fired: the failed mmap shows up as a recorded
        # per-op exception in both replays.
        names = {entry[1] for entry in batched["exceptions"]}
        assert "OutOfPhysicalMemory" in names

    def test_fuzzer_accepts_a_fault_plan(self):
        fuzzer = DifferentialFuzzer(ops=600,
                                    fault_plan=deterministic_mmap_plan())
        result = fuzzer.run_trial(21)
        assert result.ok

    def test_recurring_probabilistic_faults_stay_deterministic(self):
        # probability < 1 draws from the plan's seeded RNG; reinstalling
        # the plan resets the stream, so both engines and repeated runs
        # see the identical fault schedule.
        plan = FaultPlan(seed=11).add("kernel.mmap_bind", times=-1,
                                      probability=0.4,
                                      error="frame_exhausted")
        trace = generate_trace(33, 500)
        first, _ = replay(trace, "batched", fault_plan=plan)
        second, _ = replay(trace, "oracle", fault_plan=plan)
        third, _ = replay(trace, "batched", fault_plan=plan)
        assert diff_snapshots(first, second) == []
        assert diff_snapshots(first, third) == []

    def test_faulted_mmap_leaves_the_slot_unmapped_in_both(self):
        # A handcrafted trace: the faulted mmap's slot must fault on
        # access in *both* engines (the model thinks it is mapped).
        plan = deterministic_mmap_plan()
        trace = [
            TraceOp("mmap", vaddr=SLOT, pages=2, node=1),  # arrival 1 -> ok
            TraceOp("mmap", vaddr=SLOT + 0x8000, pages=1,
                    node=0),  # arrival 2 -> injected failure
            TraceOp("access", vaddr=SLOT, size=64, is_write=True),
            TraceOp("access", vaddr=SLOT + 0x8000, size=64,
                    is_write=True),  # must fault
        ]
        batched, _ = replay(trace, "batched", fault_plan=plan)
        oracle, _ = replay(trace, "oracle", fault_plan=plan)
        assert diff_snapshots(batched, oracle) == []
        names = [entry[1] for entry in batched["exceptions"]]
        assert names == ["OutOfPhysicalMemory", "PageFault"]

    def test_plan_is_uninstalled_after_replay(self):
        replay(generate_trace(0, 50), "batched",
               fault_plan=deterministic_mmap_plan())
        assert FAULTS.active is None
