"""Tests for the opt-in invariant sanitizer."""

import pytest

from repro.config import PAGE_SIZE
from repro.kernel.vm import Kernel
from repro.machine.wear import StartGapWearLeveler, WearTracker
from repro.sanitize import SANITIZE, InvariantViolation, Sanitizer
from repro.sanitize.invariants import Violation

from tests.conftest import build_test_machine, build_test_vm

BASE = 0x40000


@pytest.fixture
def sanitizer():
    checker = Sanitizer()
    checker.strict = False
    return checker


class TestLifecycle:
    def test_not_installed_by_default(self):
        assert SANITIZE.active is None

    def test_install_uninstall(self):
        try:
            assert SANITIZE.install() is SANITIZE
            assert SANITIZE.active is SANITIZE
        finally:
            SANITIZE.uninstall()
        assert SANITIZE.active is None

    def test_installed_context_disarms_on_error(self):
        with pytest.raises(RuntimeError):
            with SANITIZE.installed():
                assert SANITIZE.active is SANITIZE
                raise RuntimeError("boom")
        assert SANITIZE.active is None

    def test_install_resets_violation_log(self):
        checker = Sanitizer()
        checker.strict = False
        checker._flag("write_conservation", "test", "seeded")
        assert checker.violations
        checker.install(strict=False)
        try:
            assert checker.violations == []
            assert checker.checks_run == 0
        finally:
            checker.uninstall()


class TestMachineLaws:
    def test_clean_machine_passes(self, machine, sanitizer):
        kernel = Kernel(machine)
        process = kernel.create_process()
        kernel.mmap_bind(process, BASE, 4 * PAGE_SIZE, node_id=0)
        thread = process.spawn_thread()
        for i in range(2000):
            thread.access(BASE + (i * 64) % (4 * PAGE_SIZE), 64, True)
        machine.flush_all([thread.core_path])
        sanitizer.check_machine(machine)
        assert sanitizer.violations == []

    def test_lost_write_detected(self, machine, sanitizer):
        kernel = Kernel(machine)
        process = kernel.create_process()
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=1)
        thread = process.spawn_thread()
        sanitizer.check_machine(machine)  # anchor the baseline
        thread.access(BASE, 64, True)
        machine.flush_all([thread.core_path])
        machine.nodes[1].write_lines -= 1  # the drifted counter
        sanitizer.check_machine(machine)
        assert any(v.law == "write_conservation"
                   for v in sanitizer.violations)

    def test_phantom_read_detected(self, machine, sanitizer):
        sanitizer.check_machine(machine)
        machine.nodes[0].read_lines += 7
        sanitizer.check_machine(machine)
        assert any(v.law == "read_conservation"
                   for v in sanitizer.violations)

    def test_strict_mode_raises(self, machine):
        checker = Sanitizer()
        checker.check_machine(machine)
        machine.nodes[0].read_lines += 1
        with pytest.raises(InvariantViolation, match="read_conservation"):
            checker.check_machine(machine)

    def test_rebaseline_absorbs_reset(self, machine, sanitizer):
        kernel = Kernel(machine)
        process = kernel.create_process()
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=0)
        thread = process.spawn_thread()
        thread.access(BASE, 64, True)
        machine.flush_all([thread.core_path])
        sanitizer.check_machine(machine)
        # reset_counters clears node counters but not cache stats; the
        # rebaseline hook keeps the delta law anchored.
        with SANITIZE.installed(strict=False):
            machine.reset_counters()
        sanitizer.rebaseline(machine)
        sanitizer.check_machine(machine)
        assert sanitizer.violations == []

    def test_overfull_cache_set_detected(self, machine, sanitizer):
        llc = machine.sockets[0].llc
        llc._sets[0] = {tag: False for tag in range(llc.assoc + 1)}
        sanitizer.check_machine(machine)
        assert any(v.law == "cache_accounting"
                   for v in sanitizer.violations)


class TestKernelLaws:
    def test_clean_kernel_passes(self, kernel, sanitizer):
        process = kernel.create_process()
        kernel.mmap_bind(process, BASE, 4 * PAGE_SIZE, node_id=0)
        kernel.munmap(process, BASE + 2 * PAGE_SIZE, 2 * PAGE_SIZE)
        sanitizer.check_kernel(kernel)
        assert sanitizer.violations == []

    def test_leaked_frame_detected(self, kernel, sanitizer):
        process = kernel.create_process()
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=0)
        kernel.machine.nodes[0].allocate_frame()  # allocated, never mapped
        sanitizer.check_kernel(kernel)
        assert any(v.law == "frame_conservation"
                   for v in sanitizer.violations)

    def test_page_counter_drift_detected(self, kernel, sanitizer):
        process = kernel.create_process()
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=0)
        kernel.pages_mapped += 1  # drift
        sanitizer.check_kernel(kernel)
        assert any("pages_mapped" in v.detail
                   for v in sanitizer.violations)

    def test_stale_tlb_entry_detected(self, kernel, sanitizer):
        process = kernel.create_process()
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=0)
        thread = process.spawn_thread()
        thread.access(BASE, 8, False)  # primes the TLB
        thread._tlb_base += 1  # corrupt the cached translation
        sanitizer.check_kernel(kernel)
        assert any(v.law == "tlb_coherence" for v in sanitizer.violations)


class TestRuntimeLaws:
    def test_clean_vm_passes(self, sanitizer):
        vm = build_test_vm()
        mutator = vm.mutator()
        for _ in range(400):
            mutator.alloc(scalar_bytes=64)
        vm.minor_collect()
        sanitizer.check_heap(vm.heap)
        assert sanitizer.violations == []
        vm.shutdown()

    def test_committed_drift_detected(self, sanitizer):
        vm = build_test_vm()
        mutator = vm.mutator()
        for _ in range(400):
            mutator.alloc(scalar_bytes=64)
        vm.heap.committed += vm.heap.chunk_size  # drift
        sanitizer.check_heap(vm.heap)
        assert any(v.law == "freelist_occupancy"
                   for v in sanitizer.violations)
        vm.shutdown()

    def test_gc_hook_fires_when_installed(self):
        vm = build_test_vm()
        with SANITIZE.installed(strict=True) as checker:
            mutator = vm.mutator()
            for _ in range(400):
                mutator.alloc(scalar_bytes=64)
            vm.minor_collect()
            assert checker.checks_run > 0
            assert checker.violations == []
        vm.shutdown()


class TestWearLaws:
    def test_clean_tracker_passes(self, machine, sanitizer):
        tracker = WearTracker(machine, node_id=1)
        sanitizer.watch_wear(tracker)
        line = machine.nodes[1].frame_to_paddr(
            machine.nodes[1].allocate_frame()) >> 6
        for _ in range(10):
            machine.memory_write(line)
        sanitizer.check_wear(tracker)
        assert sanitizer.violations == []

    def test_missed_write_detected(self, machine, sanitizer):
        tracker = WearTracker(machine, node_id=1)
        sanitizer.watch_wear(tracker)
        line = machine.nodes[1].frame_to_paddr(
            machine.nodes[1].allocate_frame()) >> 6
        machine.memory_write(line)
        machine.nodes[1].write_lines += 1  # a write the tracker missed
        sanitizer.check_wear(tracker)
        assert any(v.law == "wear_conservation"
                   for v in sanitizer.violations)

    def test_clean_leveler_passes(self, sanitizer):
        leveler = StartGapWearLeveler(16, gap_write_interval=2)
        for i in range(100):
            leveler.write(i % 16)
        sanitizer.check_leveler(leveler)
        assert sanitizer.violations == []

    def test_uncharged_copy_detected(self, sanitizer):
        leveler = StartGapWearLeveler(16, gap_write_interval=2)
        for i in range(100):
            leveler.write(i % 16)
        leveler.gap_copies -= 1  # the old wrap-move bug
        sanitizer.check_leveler(leveler)
        assert any(v.law == "startgap_accounting"
                   for v in sanitizer.violations)


class TestObservability:
    def test_violations_counted_in_metrics(self, machine):
        from repro.observability.metrics import METRICS

        checker = Sanitizer()
        checker.strict = False
        before = METRICS.value("sanitize.violations.read_conservation")
        checker.check_machine(machine)
        machine.nodes[0].read_lines += 1
        checker.check_machine(machine)
        assert METRICS.value(
            "sanitize.violations.read_conservation") == before + 1

    def test_violation_str_names_law_and_site(self):
        violation = Violation("write_conservation", "kernel.munmap",
                              "off by 3")
        assert "write_conservation" in str(violation)
        assert "kernel.munmap" in str(violation)

    def test_hooks_are_off_by_default(self, kernel):
        # The contract the hot paths rely on: with no sanitizer
        # installed, instrumented sites run zero checks.
        process = kernel.create_process()
        before = SANITIZE.checks_run
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=0)
        kernel.munmap(process, BASE, PAGE_SIZE)
        assert SANITIZE.checks_run == before
