"""Access-engine registry and cross-engine equivalence.

The registry half pins resolution: names, the ``REPRO_ENGINE``
environment variable, precedence, and graceful degradation of the
optional backends (numba, the C compiler).  The equivalence half is
satellite coverage for the differential fuzzer: the interpreted and
compiled batch kernels agree on raw kernel state, and a fixed-seed
20k-op fuzz run of the columnar engine against the per-line oracle
passes with zero divergences in tier-1 (not just in the nightly
``repro sanitize`` sweeps).
"""

import numpy as np
import pytest

from repro.machine import pykernel
from repro.machine.cache import CacheLevel
from repro.machine.colcache import ColumnarCacheLevel
from repro.machine.colengine import ColumnarCorePath
from repro.machine.engine import (
    DEFAULT_ENGINE,
    ENGINE_ENV,
    describe_engines,
    engine_names,
    resolve_engine,
)
from repro.machine.nativekernel import load_native_kernel


class TestRegistry:
    def test_registry_names(self):
        assert engine_names() == ("perline", "batched", "columnar", "jit")

    def test_default_engine(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        engine = resolve_engine()
        assert engine.name == DEFAULT_ENGINE == "batched"
        assert not engine.columnar
        assert engine.kernel_name == "none"

    def test_env_variable_selects_engine(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "columnar")
        assert resolve_engine().name == "columnar"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "columnar")
        assert resolve_engine("perline").name == "perline"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("vectorised")

    def test_unknown_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "warp-drive")
        with pytest.raises(ValueError, match="warp-drive"):
            resolve_engine()

    def test_describe_covers_every_engine(self):
        text = describe_engines()
        for name in engine_names():
            assert name in text

    def test_jit_degrades_along_kernel_chain(self):
        # numba is optional; whatever loaded, the engine must resolve
        # and record its provenance honestly.
        engine = resolve_engine("jit")
        assert engine.columnar
        assert engine.requested == "jit"
        assert engine.kernel_name in ("numba", "native", "python")
        assert engine.kernel is not None

    def test_columnar_kernel_provenance(self):
        engine = resolve_engine("columnar")
        assert engine.columnar
        assert engine.kernel_name in ("native", "python")

    def test_cache_factories_follow_representation(self):
        assert isinstance(resolve_engine("columnar").make_cache(4096, 4),
                          ColumnarCacheLevel)
        batched_cache = resolve_engine("batched").make_cache(4096, 4)
        assert isinstance(batched_cache, CacheLevel)
        assert not isinstance(batched_cache, ColumnarCacheLevel)

    def test_columnar_core_needs_columnar_llc(self):
        from repro.config import DEFAULT_LATENCY, DEFAULT_SCALE_CONFIG
        from repro.machine.topology import emulation_platform_spec

        machine = emulation_platform_spec(
            DEFAULT_SCALE_CONFIG, DEFAULT_LATENCY).build(engine="batched")
        engine = resolve_engine("columnar")
        with pytest.raises(TypeError):
            ColumnarCorePath(machine, machine.sockets[0], None,
                             engine.kernel)


def _kernel_inputs(seed, n_runs=64):
    """One randomized batch: scalars, runs, and fresh cache matrices."""
    rng = np.random.default_rng(seed)
    p_sets, p_ways = 8, 4
    l_sets, l_ways = 32, 4
    base = rng.integers(0, 4096, size=n_runs, dtype=np.int64)
    count = rng.integers(1, 33, size=n_runs, dtype=np.int64)
    runs = np.empty(n_runs * 6, dtype=np.int64)
    runs[0::6] = base
    runs[1::6] = count
    runs[2::6] = rng.integers(0, 2, size=n_runs, dtype=np.int64)
    runs[3::6] = 120
    runs[4::6] = rng.integers(0, 2, size=n_runs, dtype=np.int64)
    runs[5::6] = runs[4::6]
    scal = np.array([n_runs, p_sets, p_ways, l_sets, l_ways,
                     10, 35, 0, 0, 1], dtype=np.int64)
    state = {
        "pt": np.full(p_sets * p_ways, -1, dtype=np.int64),
        "pd": np.zeros(p_sets * p_ways, dtype=np.uint8),
        "pa": np.zeros(p_sets * p_ways, dtype=np.int64),
        "lt": np.full(l_sets * l_ways, -1, dtype=np.int64),
        "ld": np.zeros(l_sets * l_ways, dtype=np.uint8),
        "la": np.zeros(l_sets * l_ways, dtype=np.int64),
    }
    victims = np.empty(2 * int(count.sum()) + 8, dtype=np.int64)
    out = np.zeros(pykernel.OUT_SIZE, dtype=np.int64)
    return scal, runs, state, victims, out


@pytest.mark.skipif(load_native_kernel() is None,
                    reason="no host C compiler / cached kernel")
class TestNativeKernelDifferential:
    """The C kernel is the interpreted kernel, instruction for result."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_native_matches_python_kernel(self, seed):
        native = load_native_kernel()
        scal, runs, state, victims, out = _kernel_inputs(seed)
        py_state = {k: v.copy() for k, v in state.items()}
        py_victims = victims.copy()
        py_out = out.copy()
        native(scal, runs, state["pt"], state["pd"], state["pa"],
               state["lt"], state["ld"], state["la"], victims, out)
        pykernel.run_batch(scal.copy(), runs, py_state["pt"],
                           py_state["pd"], py_state["pa"], py_state["lt"],
                           py_state["ld"], py_state["la"], py_victims,
                           py_out)
        assert (out == py_out).all()
        n_victims = int(out[pykernel.OUT_N_VICTIMS])
        assert (victims[:n_victims] == py_victims[:n_victims]).all()
        for key in state:
            assert (state[key] == py_state[key]).all(), key


class TestFixedSeedFuzzCrossCheck:
    """Tier-1 smoke of the full differential harness, engine matrix."""

    @pytest.mark.parametrize("engine", ["batched", "columnar"])
    def test_20k_ops_zero_divergence(self, engine):
        from repro.sanitize.fuzz import DifferentialFuzzer

        fuzzer = DifferentialFuzzer(ops=20_000, shrink=False,
                                    check_every=0, engine=engine,
                                    reference="perline")
        results = fuzzer.run(seed=1905, trials=1)
        assert len(results) == 1
        result = results[0]
        assert result.divergence is None
        assert result.violations == []
        assert result.ok
