"""Columnar cache level: representation parity with the dict engine.

``ColumnarCacheLevel`` re-encodes ``CacheLevel``'s per-set ordered
dicts as tag/dirty/age matrices; these tests hold the two
representations together operation by operation — same geometry
validation, same hit/miss/eviction decisions, same LRU victim under
ties and re-touches, same flush and resident enumeration order — so the
batch kernels built on the columnar state inherit a proven foundation.
"""

import random

import pytest

from repro.machine.cache import CacheLevel
from repro.machine.colcache import ColumnarCacheLevel

BOTH = (CacheLevel, ColumnarCacheLevel)


class TestGeometryGuards:
    """Degenerate geometries fail identically in both constructors."""

    @pytest.mark.parametrize("cls", BOTH)
    @pytest.mark.parametrize("size,assoc,line_size", [
        (0, 4, 64),          # zero size
        (-4096, 4, 64),      # negative size
        (4096, 0, 64),       # zero ways
        (4096, -2, 64),      # negative ways
        (4096, 4, 0),        # zero line size
        (4100, 4, 64),       # size not a multiple of line_size
        (4096, 3, 64),       # lines not divisible by assoc
        (64, 2, 64),         # one line cannot make a 2-way set
    ])
    def test_bad_geometry_raises_value_error(self, cls, size, assoc,
                                             line_size):
        with pytest.raises(ValueError):
            cls(size, assoc, line_size=line_size, name="guard")

    @pytest.mark.parametrize("cls", BOTH)
    def test_error_names_the_cache(self, cls):
        with pytest.raises(ValueError, match="victim-l2"):
            cls(0, 4, name="victim-l2")

    def test_valid_geometry_matches(self):
        dict_cache = CacheLevel(8192, 4)
        col_cache = ColumnarCacheLevel(8192, 4)
        assert col_cache.num_sets == dict_cache.num_sets == 32
        assert col_cache.assoc == dict_cache.assoc == 4


def _stats_tuple(cache):
    return (cache.stats.hits, cache.stats.misses, cache.stats.evictions,
            cache.stats.dirty_evictions, cache.flushed_dirty)


class TestScalarParity:
    """Randomized op-by-op lockstep against the dict representation."""

    def test_access_and_install_lockstep(self):
        rng = random.Random(1234)
        dict_cache = CacheLevel(4096, 4, name="L")
        col_cache = ColumnarCacheLevel(4096, 4, name="L")
        for step in range(4000):
            line = rng.randrange(0, 256)
            op = rng.random()
            if op < 0.75:
                is_write = rng.random() < 0.5
                expect = dict_cache.access(line, is_write)
                got = col_cache.access(line, is_write)
            else:
                expect = dict_cache.install_dirty(line)
                got = col_cache.install_dirty(line)
            assert got == expect, f"step {step}: {got} != {expect}"
            assert _stats_tuple(col_cache) == _stats_tuple(dict_cache)

    def test_lookup_and_is_dirty_parity(self):
        dict_cache = CacheLevel(2048, 2)
        col_cache = ColumnarCacheLevel(2048, 2)
        rng = random.Random(99)
        for _ in range(1000):
            line = rng.randrange(0, 128)
            is_write = rng.random() < 0.5
            dict_cache.access(line, is_write)
            col_cache.access(line, is_write)
        for line in range(128):
            assert col_cache.lookup(line) == dict_cache.lookup(line)
            assert col_cache.is_dirty(line) == dict_cache.is_dirty(line)

    def test_access_run_matches_scalar_loop(self):
        scalar = ColumnarCacheLevel(4096, 4)
        batched = ColumnarCacheLevel(4096, 4)
        rng = random.Random(7)
        for _ in range(200):
            first = rng.randrange(0, 200)
            count = rng.randrange(1, 40)
            is_write = rng.random() < 0.5
            expected_victims = []
            hits = 0
            for line in range(first, first + count):
                hit, victim, victim_dirty = scalar.access(line, is_write)
                hits += 1 if hit else 0
                if victim_dirty:
                    expected_victims.append(victim)
            got_hits, got_victims = batched.access_run(first, count, is_write)
            assert got_hits == hits
            assert got_victims == expected_victims
            assert _stats_tuple(batched) == _stats_tuple(scalar)


class TestLruOrderAudit:
    """The audits behind the engine bug burn-down.

    The dict engine's LRU is CPython dict insertion order; the columnar
    engine's is strictly-increasing age stamps.  These pin the two
    corner cases where a sloppy port diverges: victim choice after a
    re-touch reorders the set, and the order dirty victims leave in.
    """

    @pytest.mark.parametrize("cls", BOTH)
    def test_retouch_moves_line_to_mru(self, cls):
        # 1 set, 2 ways: lines 0 and 1 fill it; re-touching 0 must make
        # 1 the LRU victim when 2 arrives.
        cache = cls(128, 2)
        cache.access(0, False)
        cache.access(1, False)
        cache.access(0, False)  # re-touch: 0 becomes MRU
        hit, victim, _ = cache.access(2, False)
        assert not hit
        assert victim == 1

    @pytest.mark.parametrize("cls", BOTH)
    def test_install_dirty_also_touches_lru(self, cls):
        cache = cls(128, 2)
        cache.access(0, False)
        cache.access(1, False)
        cache.install_dirty(0)  # write-back arrival counts as a touch
        _, victim, victim_dirty = cache.access(2, False)
        assert victim == 1
        assert not victim_dirty

    def test_flush_order_is_set_major_insertion_order(self):
        rng = random.Random(5)
        dict_cache = CacheLevel(4096, 4)
        col_cache = ColumnarCacheLevel(4096, 4)
        for _ in range(2000):
            line = rng.randrange(0, 300)
            is_write = rng.random() < 0.6
            dict_cache.access(line, is_write)
            col_cache.access(line, is_write)
        assert col_cache.resident_lines() == dict_cache.resident_lines()
        # Flush order *is* the dirty write-back order the memory nodes
        # see, so it must match element for element, not as a set.
        assert col_cache.flush() == dict_cache.flush()
        assert col_cache.flushed_dirty == dict_cache.flushed_dirty
        assert col_cache.resident_lines() == dict_cache.resident_lines() == []

    def test_set_occupancy_parity(self):
        rng = random.Random(31)
        dict_cache = CacheLevel(2048, 2)
        col_cache = ColumnarCacheLevel(2048, 2)
        for _ in range(500):
            line = rng.randrange(0, 90)
            dict_cache.access(line, False)
            col_cache.access(line, False)
        assert col_cache.set_occupancy() == dict_cache.set_occupancy()
