"""Write-back accounting invariants for the cache hierarchy.

The paper's headline metric is PCM write *lines*, so the one thing the
cache model must never do is write a dirty line back twice (or zero
times).  These tests pin that down through the machine's write-listener
hook: every resident dirty line reaches memory exactly once at flush,
reads produce no write-backs at all, and draining private caches before
a full flush changes nothing.

Every test runs once per access engine (the per-line oracle, the
batched fused loops, and the columnar batch kernels): the invariants
are properties of the architecture, not of any one implementation, and
the deferred engines are exactly where a queued run could slip past a
flush boundary.
"""

import pytest

from repro.config import DEFAULT_LATENCY, DEFAULT_SCALE_CONFIG, PAGE_SIZE
from repro.kernel.pagetable import PageFault
from repro.kernel.vm import Kernel
from repro.machine.topology import (
    DRAM_NODE,
    PCM_NODE,
    emulation_platform_spec,
)

BASE = 0x40000

ENGINES = ("perline", "batched", "columnar")


@pytest.fixture(params=ENGINES)
def engine(request):
    return request.param


def _thread(pages=4, node=DRAM_NODE, engine=None):
    machine = emulation_platform_spec(
        DEFAULT_SCALE_CONFIG, DEFAULT_LATENCY).build(engine=engine)
    kernel = Kernel(machine)
    process = kernel.create_process(affinity_socket=0)
    kernel.mmap_bind(process, BASE, pages * PAGE_SIZE, node_id=node)
    return machine, process.spawn_thread()


def _count_writebacks(machine):
    counts = {}

    def listener(line):
        counts[line] = counts.get(line, 0) + 1

    machine.write_listeners.append(listener)
    return counts


class TestFlushExactlyOnce:
    def test_each_resident_dirty_line_flushes_exactly_once(self, engine):
        machine, thread = _thread(engine=engine)
        # 32 dirty lines: fits the 64-line private cache, no evictions.
        for index in range(32):
            thread.access(BASE + index * 64, 64, True)
        counts = _count_writebacks(machine)
        machine.flush_all([thread.core_path])
        assert len(counts) == 32
        assert set(counts.values()) == {1}
        assert machine.nodes[DRAM_NODE].write_lines == 32

    def test_clean_lines_never_write_back(self, engine):
        machine, thread = _thread(engine=engine)
        for index in range(16):
            thread.access(BASE + index * 64, 64, True)
        for index in range(16, 48):  # reads only
            thread.access(BASE + index * 64, 64, False)
        counts = _count_writebacks(machine)
        machine.flush_all([thread.core_path])
        assert len(counts) == 16
        assert set(counts.values()) == {1}

    def test_drain_then_flush_does_not_double_count(self, engine):
        machine, thread = _thread(engine=engine)
        for index in range(32):
            thread.access(BASE + index * 64, 64, True)
        counts = _count_writebacks(machine)
        thread.core_path.drain()  # private -> LLC, nothing to memory yet
        assert counts == {}
        machine.flush_all([thread.core_path])
        assert len(counts) == 32
        assert set(counts.values()) == {1}

    def test_second_flush_is_a_no_op(self, engine):
        machine, thread = _thread(engine=engine)
        for index in range(32):
            thread.access(BASE + index * 64, 64, True)
        machine.flush_all([thread.core_path])
        counts = _count_writebacks(machine)
        machine.flush_all([thread.core_path])
        assert counts == {}

    def test_rewritten_line_still_flushes_once(self, engine):
        machine, thread = _thread(engine=engine)
        for _ in range(5):
            for index in range(32):
                thread.access(BASE + index * 64, 64, True)
        counts = _count_writebacks(machine)
        machine.flush_all([thread.core_path])
        assert set(counts.values()) == {1}
        assert len(counts) == 32


class TestMidBlockFaultParity:
    """A block that faults mid-way matches the per-line engine state.

    The deferred engines must preserve the already-queued runs of the
    faulting block across the exception (the per-line path has already
    touched the caches with them) and discard only the faulting run.
    """

    def _partial_block(self, engine):
        machine, thread = _thread(pages=1, node=PCM_NODE, engine=engine)
        # Block spans the mapped page and the unmapped one after it.
        with pytest.raises(PageFault):
            thread.access(BASE + PAGE_SIZE - 256, 512, True)
        machine.flush_all([thread.core_path])
        node = machine.nodes[PCM_NODE]
        return (node.read_lines, node.write_lines, thread.cycles,
                thread.process.kernel.page_faults)

    def test_mid_block_fault_state_matches_per_line(self, engine):
        assert self._partial_block(engine) == self._partial_block("perline")
