"""Unit and property tests for the set-associative write-back cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import CacheLevel


def make_cache(size=4096, assoc=4, line=64):
    return CacheLevel(size, assoc, line, name="test")


class TestConstruction:
    def test_geometry(self):
        cache = make_cache(size=4096, assoc=4)
        assert cache.num_sets == 16
        assert cache.assoc == 4

    @pytest.mark.parametrize("size,assoc,line", [
        (0, 4, 64), (4096, 0, 64), (4096, 4, 0), (4095, 4, 64),
    ])
    def test_invalid_geometry_rejected(self, size, assoc, line):
        with pytest.raises(ValueError):
            CacheLevel(size, assoc, line)

    def test_lines_must_divide_by_assoc(self):
        with pytest.raises(ValueError):
            CacheLevel(64 * 3, 2, 64)


class TestAccess:
    def test_first_access_misses_then_hits(self):
        cache = make_cache()
        hit, victim, dirty = cache.access(10, False)
        assert not hit and victim is None and not dirty
        hit, _, _ = cache.access(10, False)
        assert hit
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_write_sets_dirty(self):
        cache = make_cache()
        cache.access(10, True)
        assert cache.is_dirty(10)

    def test_read_after_write_keeps_dirty(self):
        cache = make_cache()
        cache.access(10, True)
        cache.access(10, False)
        assert cache.is_dirty(10)

    def test_lru_eviction_order(self):
        cache = make_cache(size=4 * 64, assoc=4)  # one set
        for line in range(4):
            cache.access(line * cache.num_sets, False)
        # Touch line 0 so line 1 becomes LRU.
        cache.access(0, False)
        hit, victim, dirty = cache.access(4 * cache.num_sets, False)
        assert not hit
        assert victim == 1 * cache.num_sets
        assert not dirty

    def test_dirty_victim_reported(self):
        cache = make_cache(size=2 * 64, assoc=2)  # one set, two ways
        cache.access(0, True)
        cache.access(1, False)
        _, victim, dirty = cache.access(2, False)
        assert victim == 0
        assert dirty
        assert cache.stats.dirty_evictions == 1

    def test_lines_in_different_sets_do_not_conflict(self):
        cache = make_cache(size=4096, assoc=1)
        cache.access(0, True)
        cache.access(1, True)  # different set (line % num_sets)
        assert cache.lookup(0) and cache.lookup(1)


class TestInstallDirty:
    def test_install_makes_dirty_without_demand_stats(self):
        cache = make_cache()
        cache.install_dirty(7)
        assert cache.is_dirty(7)
        assert cache.stats.accesses == 0

    def test_install_over_clean_line_sets_dirty(self):
        cache = make_cache()
        cache.access(7, False)
        cache.install_dirty(7)
        assert cache.is_dirty(7)

    def test_install_can_evict(self):
        cache = make_cache(size=2 * 64, assoc=2)
        cache.access(0, True)
        cache.access(1, False)
        victim, dirty = cache.install_dirty(2)
        assert victim == 0 and dirty


class TestFlush:
    def test_flush_returns_only_dirty_lines(self):
        cache = make_cache()
        cache.access(1, True)
        cache.access(2, False)
        cache.access(3, True)
        assert sorted(cache.flush()) == [1, 3]
        assert cache.resident_lines() == []

    def test_flush_empties_even_clean(self):
        cache = make_cache()
        cache.access(5, False)
        cache.flush()
        assert not cache.lookup(5)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 255), st.booleans()),
                min_size=1, max_size=300))
def test_property_residents_are_subset_of_accessed(ops):
    cache = make_cache(size=1024, assoc=2)
    accessed = set()
    for line, is_write in ops:
        cache.access(line, is_write)
        accessed.add(line)
    assert set(cache.resident_lines()) <= accessed


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 255), st.booleans()),
                min_size=1, max_size=300))
def test_property_capacity_never_exceeded(ops):
    cache = make_cache(size=1024, assoc=2)
    for line, is_write in ops:
        cache.access(line, is_write)
        assert len(cache.resident_lines()) <= cache.size // cache.line_size


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()),
                min_size=1, max_size=400))
def test_property_write_conservation(ops):
    """Every written line is either still dirty, flushed, or was evicted
    dirty — writes never silently disappear."""
    cache = make_cache(size=512, assoc=2)
    written = set()
    evicted_dirty = []
    for line, is_write in ops:
        _, victim, dirty = cache.access(line, is_write)
        if is_write:
            written.add(line)
        if victim is not None and dirty:
            evicted_dirty.append(victim)
    flushed = cache.flush()
    assert set(flushed) | set(evicted_dirty) == written


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 500), min_size=1, max_size=200),
       st.integers(1, 4))
def test_property_stats_consistency(lines, assoc_pow):
    cache = make_cache(size=2048, assoc=2 ** assoc_pow)
    for line in lines:
        cache.access(line, False)
    stats = cache.stats
    assert stats.hits + stats.misses == len(lines)
    assert stats.dirty_evictions <= stats.evictions
    assert 0.0 <= stats.miss_rate <= 1.0
