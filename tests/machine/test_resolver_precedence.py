"""Registry resolution precedence: explicit > environment > default.

Both registries (access engines, placement policies) promise the same
contract: an explicit name always wins, the ``REPRO_*`` environment
variable fills in when the caller passes ``None``, and unknown names —
from either source — fail loudly instead of falling back silently.
"""

import pytest

from repro.kernel.placement import (DEFAULT_PLACEMENT, PLACEMENT_ENV,
                                    placement_names, resolve_placement)
from repro.machine.engine import (DEFAULT_ENGINE, ENGINE_ENV,
                                  engine_names, resolve_engine)


class TestEnginePrecedence:
    def test_default_when_nothing_set(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine().requested == DEFAULT_ENGINE == "batched"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "perline")
        assert resolve_engine().requested == "perline"

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "perline")
        assert resolve_engine("columnar").requested == "columnar"

    def test_unknown_explicit_name_raises(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        with pytest.raises(ValueError, match="unknown engine 'turbo'"):
            resolve_engine("turbo")

    def test_unknown_env_name_raises(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "turbo")
        with pytest.raises(ValueError, match="unknown engine 'turbo'"):
            resolve_engine()

    def test_error_lists_the_registry(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        with pytest.raises(ValueError) as excinfo:
            resolve_engine("turbo")
        for name in engine_names():
            assert name in str(excinfo.value)

    def test_empty_env_value_means_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "")
        assert resolve_engine().requested == DEFAULT_ENGINE


class TestPlacementPrecedence:
    def test_default_when_nothing_set(self, monkeypatch):
        monkeypatch.delenv(PLACEMENT_ENV, raising=False)
        assert resolve_placement() == DEFAULT_PLACEMENT == "static"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(PLACEMENT_ENV, "interleave")
        assert resolve_placement() == "interleave"

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(PLACEMENT_ENV, "interleave")
        assert resolve_placement("migrate") == "migrate"

    def test_unknown_explicit_name_raises(self, monkeypatch):
        monkeypatch.delenv(PLACEMENT_ENV, raising=False)
        with pytest.raises(ValueError,
                           match="unknown placement 'everywhere'"):
            resolve_placement("everywhere")

    def test_unknown_env_name_raises(self, monkeypatch):
        monkeypatch.setenv(PLACEMENT_ENV, "everywhere")
        with pytest.raises(ValueError,
                           match="unknown placement 'everywhere'"):
            resolve_placement()

    def test_error_lists_the_registry(self, monkeypatch):
        monkeypatch.delenv(PLACEMENT_ENV, raising=False)
        with pytest.raises(ValueError) as excinfo:
            resolve_placement("everywhere")
        for name in placement_names():
            assert name in str(excinfo.value)

    def test_empty_env_value_means_default(self, monkeypatch):
        monkeypatch.setenv(PLACEMENT_ENV, "")
        assert resolve_placement() == DEFAULT_PLACEMENT
