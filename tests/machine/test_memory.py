"""Tests for memory nodes: frames, counters, attribution."""

import pytest

from repro.config import PAGE_SIZE
from repro.machine.memory import (
    NODE_SHIFT,
    MemoryNode,
    OutOfPhysicalMemory,
    node_of_line,
)


@pytest.fixture
def node():
    return MemoryNode(1, 64 * PAGE_SIZE, "PCM")


class TestFrames:
    def test_allocate_unique_frames(self, node):
        frames = {node.allocate_frame() for _ in range(64)}
        assert len(frames) == 64

    def test_exhaustion_raises(self, node):
        for _ in range(64):
            node.allocate_frame()
        with pytest.raises(OutOfPhysicalMemory):
            node.allocate_frame()

    def test_free_frame_recycled(self, node):
        frame = node.allocate_frame()
        node.free_frame(frame)
        assert node.allocate_frame() == frame

    def test_free_unallocated_frame_rejected(self, node):
        with pytest.raises(ValueError):
            node.free_frame(5)

    def test_frames_in_use_accounting(self, node):
        first = node.allocate_frame()
        node.allocate_frame()
        node.free_frame(first)
        assert node.frames_in_use == 1

    def test_unaligned_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryNode(0, PAGE_SIZE + 1, "DRAM")

    def test_double_free_rejected(self, node):
        # A double free used to push the frame onto the free list
        # twice, letting two mappings share one frame and wrecking the
        # frames_in_use accounting.
        frame = node.allocate_frame()
        node.free_frame(frame)
        with pytest.raises(ValueError, match="double free"):
            node.free_frame(frame)
        assert node.frames_in_use == 0

    def test_free_after_realloc_is_not_a_double_free(self, node):
        frame = node.allocate_frame()
        node.free_frame(frame)
        assert node.allocate_frame() == frame
        node.free_frame(frame)  # legitimate: it was re-allocated
        assert node.frames_in_use == 0


class TestAddressing:
    def test_paddr_encodes_node(self, node):
        frame = node.allocate_frame()
        paddr = node.frame_to_paddr(frame)
        assert paddr >> NODE_SHIFT == 1
        assert node_of_line(paddr >> 6) == 1

    def test_node_zero_lines(self):
        dram = MemoryNode(0, 16 * PAGE_SIZE, "DRAM")
        frame = dram.allocate_frame()
        assert node_of_line(dram.frame_to_paddr(frame) >> 6) == 0


class TestCounters:
    def test_write_and_read_counting(self, node):
        frame = node.allocate_frame()
        line = node.frame_to_paddr(frame) >> 6
        node.record_write(line)
        node.record_write(line)
        node.record_read(line)
        assert node.write_lines == 2
        assert node.read_lines == 1
        assert node.write_bytes == 128

    def test_reset_counters(self, node):
        node.record_write(0)
        node.reset_counters()
        assert node.write_lines == 0
        assert node.writes_by_tag == {}

    def test_snapshot(self, node):
        node.record_write(0)
        snap = node.snapshot()
        assert snap["write_lines"] == 1


class TestAttribution:
    def test_tagged_frame_attributes_writes(self, node):
        frame = node.allocate_frame()
        node.tag_frame(frame, "nursery")
        line = node.frame_to_paddr(frame) >> 6
        node.record_write(line)
        assert node.writes_by_tag == {"nursery": 1}

    def test_untagged_writes_not_attributed(self, node):
        frame = node.allocate_frame()
        node.record_write(node.frame_to_paddr(frame) >> 6)
        assert node.writes_by_tag == {}

    def test_free_clears_tag(self, node):
        frame = node.allocate_frame()
        node.tag_frame(frame, "mature")
        node.free_frame(frame)
        frame2 = node.allocate_frame()
        assert frame2 == frame
        node.record_write(node.frame_to_paddr(frame2) >> 6)
        assert node.writes_by_tag == {}

    def test_retag_overwrites(self, node):
        frame = node.allocate_frame()
        node.tag_frame(frame, "mature.pcm")
        node.tag_frame(frame, "large.pcm")
        node.record_write(node.frame_to_paddr(frame) >> 6)
        assert node.writes_by_tag == {"large.pcm": 1}
