"""Tests for wear tracking and start-gap wear levelling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.wear import (
    StartGapWearLeveler,
    WearTracker,
    effective_endurance_efficiency,
    replay_through_leveler,
)

from tests.conftest import build_test_machine


class TestWearTracker:
    def test_counts_pcm_writes_only(self, machine):
        tracker = WearTracker(machine, node_id=1)
        pcm_line = machine.nodes[1].frame_to_paddr(
            machine.nodes[1].allocate_frame()) >> 6
        dram_line = machine.nodes[0].frame_to_paddr(
            machine.nodes[0].allocate_frame()) >> 6
        machine.memory_write(pcm_line)
        machine.memory_write(pcm_line)
        machine.memory_write(dram_line)
        assert tracker.total_writes == 2
        assert tracker.wear[pcm_line] == 2
        assert tracker.lines_touched == 1

    def test_imbalance(self, machine):
        tracker = WearTracker(machine, node_id=1)
        base = machine.nodes[1].frame_to_paddr(
            machine.nodes[1].allocate_frame()) >> 6
        for _ in range(9):
            machine.memory_write(base)
        machine.memory_write(base + 1)
        assert tracker.max_wear == 9
        assert tracker.imbalance() == pytest.approx(9 / 5)

    def test_detach_stops_counting(self, machine):
        tracker = WearTracker(machine, node_id=1)
        tracker.detach()
        line = machine.nodes[1].frame_to_paddr(
            machine.nodes[1].allocate_frame()) >> 6
        machine.memory_write(line)
        assert tracker.total_writes == 0


class TestStartGap:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            StartGapWearLeveler(1)
        with pytest.raises(ValueError):
            StartGapWearLeveler(8, gap_write_interval=0)

    def test_mapping_is_a_bijection(self):
        leveler = StartGapWearLeveler(16)
        slots = {leveler.physical_slot(line) for line in range(16)}
        assert len(slots) == 16
        assert leveler.gap not in slots

    def test_mapping_stays_bijective_as_gap_moves(self):
        leveler = StartGapWearLeveler(16, gap_write_interval=3)
        for i in range(200):
            leveler.write(i % 16)
            slots = {leveler.physical_slot(line) for line in range(16)}
            assert len(slots) == 16
            assert leveler.gap not in slots

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            StartGapWearLeveler(8).physical_slot(8)

    def test_hot_line_wear_is_spread(self):
        # Without levelling, one line takes all the wear; Start-Gap
        # smears it over the region.
        leveler = StartGapWearLeveler(32, gap_write_interval=4)
        for _ in range(4000):
            leveler.write(0)
        worn_slots = sum(1 for wear in leveler.physical_wear if wear > 0)
        assert worn_slots > 16
        assert leveler.efficiency() > 0.2

    def test_uniform_writes_stay_level(self):
        leveler = StartGapWearLeveler(32, gap_write_interval=8)
        for i in range(3200):
            leveler.write(i % 32)
        assert leveler.efficiency() > 0.8

    def test_write_amplification_charged(self):
        leveler = StartGapWearLeveler(8, gap_write_interval=1)
        for _ in range(10):
            leveler.write(0)
        # Every gap move copies one line into the vacated slot — the
        # wrap move included: it relocates the top slot's contents to
        # slot 0 (the old code treated the wrap as a free rename and
        # under-counted wear by one line per rotation).
        assert leveler.gap_moves == 10
        assert leveler.gap_copies == 10
        assert sum(leveler.physical_wear) == 10 + leveler.gap_copies

    def test_wrap_boundary_charges_the_copy(self):
        # Region of 8 lines, gap moves every write: the 9th move is the
        # wrap (gap 0 -> gap N, start++).  It must be charged like any
        # other move.
        leveler = StartGapWearLeveler(8, gap_write_interval=1)
        for i in range(8):
            leveler.write(i % 8)
        assert leveler.gap == 0
        copies_before = leveler.gap_copies
        wear_before = sum(leveler.physical_wear)
        leveler.write(0)  # triggers the wrap move
        assert leveler.start == 1
        assert leveler.gap == leveler.region_lines
        assert leveler.gap_copies == copies_before + 1
        # +1 for the logical write itself, +1 for the wrap copy.
        assert sum(leveler.physical_wear) == wear_before + 2

    def test_bijection_across_two_full_rotations(self):
        # One rotation = region_lines + 1 gap moves.  Two rotations of
        # a 16-line region at interval 1 need > 34 writes.
        leveler = StartGapWearLeveler(16, gap_write_interval=1)
        for i in range(40):
            leveler.write(i % 16)
            slots = {leveler.physical_slot(line) for line in range(16)}
            assert len(slots) == 16
            assert leveler.gap not in slots
        assert leveler.start >= 2  # really wrapped at least twice

    def test_amplification_matches_gap_write_interval(self):
        # Section VI-G: Start-Gap's write amplification is one extra
        # line write per gap_write_interval logical writes.
        for interval in (1, 2, 4, 8):
            leveler = StartGapWearLeveler(32, gap_write_interval=interval)
            writes = 32 * interval * 3
            for i in range(writes):
                leveler.write(i % 32)
            assert leveler.gap_copies == writes // interval
            assert sum(leveler.physical_wear) == pytest.approx(
                writes * (1 + 1 / interval))


class TestReplay:
    def test_replay_preserves_total_writes_plus_amplification(self):
        wear = {0: 5, 7: 3}
        leveler = replay_through_leveler(wear, region_lines=16,
                                         gap_write_interval=4)
        assert leveler.total_writes == 8
        assert sum(leveler.physical_wear) == 8 + leveler.gap_copies

    def test_efficiency_from_tracker(self, machine):
        tracker = WearTracker(machine, node_id=1)
        base = machine.nodes[1].frame_to_paddr(
            machine.nodes[1].allocate_frame()) >> 6
        for i in range(500):
            machine.memory_write(base + (i % 3))  # 3 hot lines
        efficiency = effective_endurance_efficiency(
            tracker, region_lines=64, gap_write_interval=2)
        # Start-Gap turns 3-hot-line wear into something much flatter
        # than the unlevelled 64/3 imbalance (~0.05).
        assert 0.08 < efficiency <= 1.0

    def test_empty_tracker_is_perfect(self, machine):
        tracker = WearTracker(machine, node_id=1)
        assert effective_endurance_efficiency(tracker) == 1.0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 15), min_size=1, max_size=400),
       st.integers(1, 16))
def test_property_physical_wear_conserves_writes(lines, interval):
    leveler = StartGapWearLeveler(16, gap_write_interval=interval)
    for line in lines:
        leveler.write(line)
    assert leveler.gap_moves == len(lines) // interval
    assert leveler.gap_copies == leveler.gap_moves
    assert sum(leveler.physical_wear) == len(lines) + leveler.gap_copies
    slots = {leveler.physical_slot(line) for line in range(16)}
    assert len(slots) == 16 and leveler.gap not in slots
