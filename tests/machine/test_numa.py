"""Tests for sockets, the core access path, and the machine."""

import pytest

from repro.config import KB, LatencyModel, MB
from repro.machine.cache import CacheLevel
from repro.machine.memory import MemoryNode
from repro.machine.numa import NumaMachine, Socket

from tests.conftest import build_test_machine


def line_on(machine, node_id, frame=0, offset=0):
    node = machine.nodes[node_id]
    while node._next_frame <= frame:  # ensure frame exists
        node.allocate_frame()
    return (node.frame_to_paddr(frame) >> 6) + offset


class TestConstruction:
    def test_socket_ids_must_match_index(self):
        llc = CacheLevel(4096, 4)
        mem = MemoryNode(1, 16 * 4096, "DRAM")
        with pytest.raises(ValueError):
            NumaMachine([Socket(1, llc, mem, cores=2)], LatencyModel())

    def test_empty_machine_rejected(self):
        with pytest.raises(ValueError):
            NumaMachine([], LatencyModel())

    def test_logical_cpus(self, machine):
        assert machine.sockets[0].logical_cpus == 8  # 4 cores x 2 HT


class TestAccessPath:
    def test_llc_miss_costs_memory_latency(self, machine):
        core = machine.make_core(0)
        line = line_on(machine, 0)
        assert core.access_line(line, False) == machine.latency.local_dram
        assert core.access_line(line, False) == machine.latency.llc_hit

    def test_remote_access_costs_more(self, machine):
        core = machine.make_core(0)
        line = line_on(machine, 1)
        assert core.access_line(line, False) == machine.latency.remote_dram

    def test_memory_read_counted_on_home_node(self, machine):
        core = machine.make_core(0)
        core.access_line(line_on(machine, 1), False)
        assert machine.nodes[1].read_lines == 1
        assert machine.nodes[0].read_lines == 0

    def test_dirty_eviction_writes_home_node(self, machine):
        core = machine.make_core(0)
        llc = machine.sockets[0].llc
        base = line_on(machine, 1)
        # Fill one set beyond capacity with writes.
        for way in range(llc.assoc + 1):
            core.access_line(base + way * llc.num_sets, True)
        assert machine.nodes[1].write_lines == 1

    def test_private_cache_filters_llc(self):
        machine = build_test_machine(private_l2=4 * KB)
        core = machine.make_core(0)
        line = line_on(machine, 0)
        core.access_line(line, False)
        cost = core.access_line(line, False)
        assert cost == machine.latency.l2_hit
        # The LLC saw the line only once.
        assert machine.sockets[0].llc.stats.accesses == 1

    def test_private_dirty_writeback_reaches_llc(self):
        machine = build_test_machine(private_l2=4 * KB)
        core = machine.make_core(0)
        line = line_on(machine, 0)
        core.access_line(line, True)
        core.drain()
        assert machine.sockets[0].llc.is_dirty(line)


class TestMachine:
    def test_write_listener_invoked(self, machine):
        seen = []
        machine.write_listeners.append(seen.append)
        machine.memory_write(line_on(machine, 1))
        assert len(seen) == 1

    def test_flush_all_reaches_memory(self, machine):
        core = machine.make_core(0)
        line = line_on(machine, 1)
        core.access_line(line, True)
        machine.flush_all([core])
        assert machine.nodes[1].write_lines == 1

    def test_reset_counters(self, machine):
        machine.memory_write(line_on(machine, 0))
        machine.reset_counters()
        assert machine.node_writes(0) == 0

    def test_two_sockets_have_independent_llcs(self, machine):
        core0 = machine.make_core(0)
        core1 = machine.make_core(1)
        line = line_on(machine, 0)
        core0.access_line(line, False)
        # Socket 1's LLC does not hold socket 0's line.
        cost = core1.access_line(line, False)
        assert cost == machine.latency.remote_dram
