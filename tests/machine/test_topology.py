"""Tests for machine specifications."""

from repro.config import ScaleConfig
from repro.machine.topology import (
    DRAM_NODE,
    PCM_NODE,
    emulation_platform_spec,
    sniper_simulation_spec,
)


class TestEmulationSpec:
    def test_two_sockets_eight_cores_hyperthreaded(self):
        spec = emulation_platform_spec()
        assert spec.sockets == 2
        assert spec.cores_per_socket == 8
        assert spec.hyperthreads == 2

    def test_llc_scales_with_config(self):
        small = emulation_platform_spec(ScaleConfig(scale=128))
        default = emulation_platform_spec()
        assert small.llc_size < default.llc_size

    def test_build_produces_dram_and_pcm_nodes(self):
        machine = emulation_platform_spec().build()
        assert machine.nodes[DRAM_NODE].kind == "DRAM"
        assert machine.nodes[PCM_NODE].kind == "PCM"

    def test_private_cache_factory_installed(self):
        machine = emulation_platform_spec().build()
        assert machine.private_cache_factory is not None
        cache = machine.private_cache_factory()
        assert cache.size == emulation_platform_spec().l2_size


class TestSniperSpec:
    def test_no_hyperthreading(self):
        assert sniper_simulation_spec().hyperthreads == 1

    def test_llc_override(self):
        spec = sniper_simulation_spec(llc_size=64 * 1024)
        assert spec.llc_size == 64 * 1024

    def test_without_hyperthreading_helper(self):
        spec = emulation_platform_spec().without_hyperthreading()
        assert spec.hyperthreads == 1

    def test_cache_geometry_always_valid(self):
        # Every scale must produce buildable caches.
        for scale in (16, 32, 64, 128, 256):
            machine = sniper_simulation_spec(ScaleConfig(scale=scale)).build()
            assert machine.sockets[0].llc.num_sets > 0
