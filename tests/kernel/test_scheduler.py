"""Tests for the round-robin quantum scheduler."""

from repro.kernel.scheduler import Scheduler


def make_instance(log, name, quanta):
    def generator():
        for index in range(quanta):
            log.append((name, index))
            yield
    return generator()


class TestScheduling:
    def test_all_instances_complete(self):
        log = []
        Scheduler(jitter=False).run([
            make_instance(log, "a", 3),
            make_instance(log, "b", 5),
        ])
        assert sum(1 for name, _ in log if name == "a") == 3
        assert sum(1 for name, _ in log if name == "b") == 5

    def test_round_robin_interleaves(self):
        log = []
        Scheduler(jitter=False).run([
            make_instance(log, "a", 2),
            make_instance(log, "b", 2),
        ])
        assert log == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]

    def test_shorter_instance_drops_out(self):
        log = []
        Scheduler(jitter=False).run([
            make_instance(log, "a", 1),
            make_instance(log, "b", 3),
        ])
        # After a finishes, b runs alone.
        assert log[-2:] == [("b", 1), ("b", 2)]

    def test_jitter_is_deterministic_per_seed(self):
        def run_with(seed):
            log = []
            Scheduler(seed=seed, jitter=True).run([
                make_instance(log, "a", 4),
                make_instance(log, "b", 4),
                make_instance(log, "c", 4),
            ])
            return log
        assert run_with(1) == run_with(1)

    def test_jitter_changes_order(self):
        logs = []
        for seed in range(5):
            log = []
            Scheduler(seed=seed, jitter=True).run([
                make_instance(log, "a", 6),
                make_instance(log, "b", 6),
                make_instance(log, "c", 6),
            ])
            logs.append(tuple(log))
        assert len(set(logs)) > 1

    def test_on_round_callback(self):
        # Three yields plus the final StopIteration round.
        rounds = []
        Scheduler(jitter=False).run(
            [make_instance([], "a", 3)], on_round=rounds.append)
        assert rounds == [1, 2, 3, 4]

    def test_empty_instance_list(self):
        scheduler = Scheduler()
        scheduler.run([])
        assert scheduler.rounds == 0
