"""Software-TLB invalidation and ``mmap_bind`` rollback semantics.

The per-thread TLB caches one vpage -> line-base translation keyed by
the page table's epoch; it must never serve a stale translation after
``munmap``.  ``mmap_bind`` must be all-or-nothing: a mid-range frame
exhaustion may not leave a half-populated page table or leaked frames.

Every test runs once per access engine: the deferred columnar queue
holds *physical* line addresses, so ``munmap``/``mmap_bind``/reclaim
are exactly where a missing engine sync would re-home queued traffic
or serve a stale translation.
"""

import pytest

from repro.config import DEFAULT_LATENCY, DEFAULT_SCALE_CONFIG, PAGE_SIZE
from repro.kernel.pagetable import PageFault
from repro.kernel.vm import Kernel, MBindError
from repro.machine.memory import OutOfPhysicalMemory
from repro.machine.topology import (
    DRAM_NODE,
    PCM_NODE,
    emulation_platform_spec,
)

BASE = 0x80000


@pytest.fixture(params=("perline", "batched", "columnar"))
def kernel(request):
    machine = emulation_platform_spec(
        DEFAULT_SCALE_CONFIG, DEFAULT_LATENCY).build(engine=request.param)
    return Kernel(machine)


class TestTlbInvalidation:
    def test_unmap_invalidates_cached_translation(self, kernel):
        process = kernel.create_process()
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=DRAM_NODE)
        thread = process.spawn_thread()
        thread.access(BASE, 8, True)  # primes the TLB
        kernel.munmap(process, BASE, PAGE_SIZE)
        with pytest.raises(PageFault):
            thread.access(BASE, 8, True)
        assert kernel.page_faults == 1

    def test_remap_after_unmap_reaches_the_new_frame(self, kernel):
        process = kernel.create_process()
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=DRAM_NODE)
        thread = process.spawn_thread()
        thread.access(BASE, 64, True)
        kernel.munmap(process, BASE, PAGE_SIZE)
        # Same vpage, different node: a stale TLB entry would keep
        # counting traffic against DRAM.
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=PCM_NODE)
        thread.access(BASE, 64, True)
        kernel.machine.flush_all([thread.core_path])
        assert kernel.machine.nodes[PCM_NODE].write_lines == 1

    def test_block_access_reprimes_tlb_across_pages(self, kernel):
        process = kernel.create_process()
        kernel.mmap_bind(process, BASE, 4 * PAGE_SIZE, node_id=DRAM_NODE)
        thread = process.spawn_thread()
        thread.access_block(BASE, 4 * PAGE_SIZE, True)
        kernel.munmap(process, BASE, 4 * PAGE_SIZE)
        with pytest.raises(PageFault):
            thread.access_block(BASE, 4 * PAGE_SIZE, True)


class TestMmapRollback:
    def test_exhaustion_mid_range_rolls_back_completely(self, kernel):
        node = kernel.machine.nodes[DRAM_NODE]
        process = kernel.create_process()
        free_pages = node.total_frames
        # Leave 3 free frames, then ask for 8: the 4th allocation fails.
        kernel.mmap_bind(process, BASE, (free_pages - 3) * PAGE_SIZE,
                         node_id=DRAM_NODE)
        mapped_before = process.page_table.mapped_pages
        frames_before = node.frames_in_use
        pages_counter = kernel.pages_mapped
        calls_before = kernel.mmap_calls
        with pytest.raises(OutOfPhysicalMemory):
            kernel.mmap_bind(process, 0x90000000, 8 * PAGE_SIZE,
                             node_id=DRAM_NODE, tag="doomed")
        assert process.page_table.mapped_pages == mapped_before
        assert node.frames_in_use == frames_before
        assert kernel.pages_mapped == pages_counter
        # The failed attempt still counts as a syscall.
        assert kernel.mmap_calls == calls_before + 1

    def test_rolled_back_frames_are_reusable(self, kernel):
        node = kernel.machine.nodes[DRAM_NODE]
        process = kernel.create_process()
        kernel.mmap_bind(process, BASE, (node.total_frames - 3) * PAGE_SIZE,
                         node_id=DRAM_NODE)
        with pytest.raises(OutOfPhysicalMemory):
            kernel.mmap_bind(process, 0x90000000, 8 * PAGE_SIZE,
                             node_id=DRAM_NODE)
        # The 3 surviving frames must be allocatable again.
        kernel.mmap_bind(process, 0x90000000, 3 * PAGE_SIZE,
                         node_id=DRAM_NODE)
        assert node.frames_in_use == node.total_frames

    def test_rollback_keeps_pre_existing_mappings_usable(self, kernel):
        node = kernel.machine.nodes[DRAM_NODE]
        process = kernel.create_process()
        thread = process.spawn_thread()
        kernel.mmap_bind(process, BASE, (node.total_frames - 1) * PAGE_SIZE,
                         node_id=DRAM_NODE)
        with pytest.raises(OutOfPhysicalMemory):
            kernel.mmap_bind(process, 0x90000000, 2 * PAGE_SIZE,
                             node_id=DRAM_NODE)
        thread.access(BASE, 8, True)  # earlier mapping still live
        assert kernel.page_faults == 0


class TestOverlapValidation:
    """Remapping a live page must fail before any side effect.

    The old rollback unmapped *whatever was mapped* in the failed
    range, so an overlapping ``mmap_bind`` destroyed the pre-existing
    mapping and leaked its frame (found by the differential fuzzer's
    hostile-op mix via the frame-conservation law).
    """

    def test_overlap_raises_mbind_error(self, kernel):
        process = kernel.create_process()
        kernel.mmap_bind(process, BASE, 2 * PAGE_SIZE, node_id=DRAM_NODE)
        with pytest.raises(MBindError):
            kernel.mmap_bind(process, BASE + PAGE_SIZE, 2 * PAGE_SIZE,
                             node_id=DRAM_NODE)

    def test_overlap_leaves_existing_mapping_intact(self, kernel):
        node = kernel.machine.nodes[DRAM_NODE]
        process = kernel.create_process()
        thread = process.spawn_thread()
        kernel.mmap_bind(process, BASE, 2 * PAGE_SIZE, node_id=DRAM_NODE)
        frames_before = node.frames_in_use
        mapped_before = kernel.pages_mapped
        with pytest.raises(MBindError):
            kernel.mmap_bind(process, BASE, 4 * PAGE_SIZE,
                             node_id=PCM_NODE)
        # No frame allocated or leaked, no page counter movement, and
        # the original mapping still serves accesses.
        assert node.frames_in_use == frames_before
        assert kernel.machine.nodes[PCM_NODE].frames_in_use == 0
        assert kernel.pages_mapped == mapped_before
        assert process.page_table.mapped_pages == 2
        thread.access(BASE, 8, True)
        assert kernel.page_faults == 0

    def test_overlap_still_counts_the_syscall(self, kernel):
        process = kernel.create_process()
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=DRAM_NODE)
        calls_before = kernel.mmap_calls
        with pytest.raises(MBindError):
            kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=DRAM_NODE)
        assert kernel.mmap_calls == calls_before + 1


class TestAtomicMunmap:
    """``munmap`` must be all-or-nothing across the requested range.

    The old implementation freed frames page by page and raised on the
    first unmapped page, leaving earlier pages gone but
    ``pages_unmapped``/``munmap_calls`` never updated — counter drift
    the sanitizer's page-conservation law flags immediately.
    """

    def test_unmapped_tail_frees_nothing(self, kernel):
        node = kernel.machine.nodes[DRAM_NODE]
        process = kernel.create_process()
        thread = process.spawn_thread()
        kernel.mmap_bind(process, BASE, 2 * PAGE_SIZE, node_id=DRAM_NODE)
        frames_before = node.frames_in_use
        unmapped_before = kernel.pages_unmapped
        with pytest.raises(PageFault):
            kernel.munmap(process, BASE, 3 * PAGE_SIZE)  # page 3 unmapped
        assert node.frames_in_use == frames_before
        assert process.page_table.mapped_pages == 2
        assert kernel.pages_unmapped == unmapped_before
        thread.access(BASE, 8, True)  # both pages still live
        assert kernel.page_faults == 0

    def test_failed_munmap_still_counts_the_syscall(self, kernel):
        process = kernel.create_process()
        calls_before = kernel.munmap_calls
        with pytest.raises(PageFault):
            kernel.munmap(process, BASE, PAGE_SIZE)
        assert kernel.munmap_calls == calls_before + 1

    def test_successful_munmap_counts_pages(self, kernel):
        process = kernel.create_process()
        kernel.mmap_bind(process, BASE, 3 * PAGE_SIZE, node_id=DRAM_NODE)
        kernel.munmap(process, BASE, 3 * PAGE_SIZE)
        assert kernel.pages_unmapped == 3
        assert kernel.pages_mapped - kernel.pages_unmapped == 0

    def test_reclaim_counts_unmapped_pages(self, kernel):
        process = kernel.create_process()
        kernel.mmap_bind(process, BASE, 4 * PAGE_SIZE, node_id=DRAM_NODE)
        process.exit()
        assert kernel.pages_unmapped == 4
        assert kernel.machine.nodes[DRAM_NODE].frames_in_use == 0
