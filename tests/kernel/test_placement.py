"""Tests for the placement-policy layer (static/first-touch/interleave/
migrate) and its resolution rules."""

import pytest

from repro.config import PAGE_SHIFT, PAGE_SIZE
from repro.kernel.pagetable import PageFault
from repro.kernel.placement import (
    PLACEMENT_ENV,
    MigrantStorePlacement,
    placement_names,
    resolve_placement,
)
from repro.kernel.process import Process
from repro.kernel.vm import Kernel
from repro.machine.topology import DRAM_NODE, PCM_NODE

BASE = 0x40000
BASE_PAGE = BASE >> PAGE_SHIFT


def make_migrate_process(kernel, **kwargs):
    """A process driven by a parameterised MigrantStore policy.

    Mirrors what ``create_process`` does for the stock policy, but lets
    tests pin the budget/thresholds/cap.
    """
    policy = MigrantStorePlacement(kernel, **kwargs)
    process = Process(kernel._next_pid, kernel, 0, placement=policy)
    kernel._next_pid += 1
    kernel.processes.append(process)
    kernel._tick_policies.append(policy)
    kernel.machine.write_listeners.append(policy.on_write)
    return process, policy


def write_lines(process, vaddr, count):
    """Dirty ``count`` distinct lines of the page at ``vaddr`` and
    flush them to memory so the write stream observes them."""
    thread = process.spawn_thread()
    for index in range(count):
        thread.access(vaddr + 64 * index, 8, True)
    process.kernel.machine.flush_all([thread.core_path])


class TestResolution:
    def test_default_is_static(self, monkeypatch):
        monkeypatch.delenv(PLACEMENT_ENV, raising=False)
        assert resolve_placement() == "static"

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv(PLACEMENT_ENV, "interleave")
        assert resolve_placement() == "interleave"

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(PLACEMENT_ENV, "interleave")
        assert resolve_placement("migrate") == "migrate"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            resolve_placement("numa-balancing")

    def test_unknown_env_rejected(self, monkeypatch):
        monkeypatch.setenv(PLACEMENT_ENV, "bogus")
        with pytest.raises(ValueError, match="unknown placement"):
            resolve_placement()

    def test_registry_order(self):
        assert placement_names() == ("static", "first-touch",
                                     "interleave", "migrate")

    def test_kernel_resolves_at_construction(self, machine):
        assert Kernel(machine).placement == "static"
        assert Kernel(machine, placement="migrate").placement == "migrate"

    def test_per_process_override(self, kernel):
        process = kernel.create_process(placement="interleave")
        assert process.placement.name == "interleave"
        assert kernel.create_process().placement.name == "static"


class TestStaticEagerIdentity:
    """The default policy must keep the pre-placement behaviour exactly:
    eager frames from the requested node, zero faults ever."""

    def test_eager_backing_and_zero_faults(self, kernel):
        process = kernel.create_process()
        kernel.mmap_bind(process, BASE, 2 * PAGE_SIZE, node_id=1)
        assert kernel.pages_mapped == 2
        assert kernel.machine.nodes[1].frames_in_use == 2
        thread = process.spawn_thread()
        thread.access(BASE, 8, True)
        thread.access(BASE + PAGE_SIZE, 8, False)
        assert kernel.page_faults == 0


class TestFirstTouch:
    def test_bind_only_reserves(self, kernel):
        process = kernel.create_process(placement="first-touch")
        kernel.mmap_bind(process, BASE, 4 * PAGE_SIZE, node_id=0)
        assert kernel.mmap_calls == 1
        assert kernel.pages_mapped == 0
        assert kernel.machine.nodes[0].frames_in_use == 0
        assert kernel.machine.nodes[1].frames_in_use == 0
        for vpage in range(BASE_PAGE, BASE_PAGE + 4):
            assert process.page_table.is_reserved(vpage)
            assert not process.page_table.is_mapped(vpage)

    def test_first_touch_backs_on_touching_socket(self, kernel):
        # The GC asked for DRAM; the OS never hears the hint and backs
        # the page local to the toucher on socket 1 instead.
        process = kernel.create_process(affinity_socket=1,
                                        placement="first-touch")
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=0)
        thread = process.spawn_thread()
        thread.access(BASE, 8, True)
        node_id, _frame = process.page_table.entry(BASE_PAGE)
        assert node_id == 1
        assert kernel.page_faults == 1
        assert kernel.pages_mapped == 1

    def test_faults_count_real_first_touches_only(self, kernel):
        process = kernel.create_process(placement="first-touch")
        kernel.mmap_bind(process, BASE, 4 * PAGE_SIZE, node_id=0)
        thread = process.spawn_thread()
        thread.access(BASE, 8, True)
        thread.access(BASE + 32, 8, True)   # same page: translation cached
        thread.access(BASE + PAGE_SIZE, 8, False)
        assert kernel.page_faults == 2
        assert kernel.pages_mapped == 2     # two pages never touched

    def test_falls_back_when_local_node_full(self, kernel):
        node0 = kernel.machine.nodes[0]
        while node0.frames_in_use < node0.total_frames:
            node0.allocate_frame()
        process = kernel.create_process(affinity_socket=0,
                                        placement="first-touch")
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=0)
        process.spawn_thread().access(BASE, 8, True)
        node_id, _frame = process.page_table.entry(BASE_PAGE)
        assert node_id == 1

    def test_reservation_carries_tag(self, kernel):
        process = kernel.create_process(affinity_socket=1,
                                        placement="first-touch")
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=0,
                         tag="nursery")
        write_lines(process, BASE, 1)
        assert kernel.machine.nodes[1].writes_by_tag == {"nursery": 1}

    def test_untouched_reservation_unmaps_cleanly(self, kernel):
        process = kernel.create_process(placement="first-touch")
        kernel.mmap_bind(process, BASE, 2 * PAGE_SIZE, node_id=0)
        kernel.munmap(process, BASE, 2 * PAGE_SIZE)
        assert kernel.pages_unmapped == 0   # nothing was ever backed
        assert not process.page_table.is_reserved(BASE_PAGE)

    def test_unreserved_address_still_faults(self, kernel):
        process = kernel.create_process(placement="first-touch")
        with pytest.raises(PageFault):
            process.spawn_thread().access(BASE, 8, True)


class TestInterleave:
    def test_round_robin_across_nodes(self, kernel):
        process = kernel.create_process(placement="interleave")
        kernel.mmap_bind(process, BASE, 4 * PAGE_SIZE, node_id=0)
        nodes = [process.page_table.entry(vpage)[0]
                 for vpage in range(BASE_PAGE, BASE_PAGE + 4)]
        assert nodes == [0, 1, 0, 1]

    def test_cursor_continues_across_binds(self, kernel):
        process = kernel.create_process(placement="interleave")
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=0)
        kernel.mmap_bind(process, BASE + 0x10000, PAGE_SIZE, node_id=0)
        first = process.page_table.entry(BASE_PAGE)[0]
        second = process.page_table.entry((BASE + 0x10000) >> PAGE_SHIFT)[0]
        assert (first, second) == (0, 1)

    def test_cursor_is_per_process(self, kernel):
        first = kernel.create_process(placement="interleave")
        second = kernel.create_process(placement="interleave")
        kernel.mmap_bind(first, BASE, PAGE_SIZE, node_id=0)
        kernel.mmap_bind(second, BASE, PAGE_SIZE, node_id=0)
        assert first.page_table.entry(BASE_PAGE)[0] == 0
        assert second.page_table.entry(BASE_PAGE)[0] == 0


class TestMigrantStore:
    def test_everything_lands_on_pcm_first(self, kernel):
        process = kernel.create_process(placement="migrate")
        kernel.mmap_bind(process, BASE, 2 * PAGE_SIZE, node_id=DRAM_NODE)
        for vpage in range(BASE_PAGE, BASE_PAGE + 2):
            assert process.page_table.entry(vpage)[0] == PCM_NODE

    def test_hot_page_promoted_at_tick(self, kernel):
        process = kernel.create_process(placement="migrate")
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=DRAM_NODE)
        # 8 dirty lines, alpha 0.5 -> score 4.0, the promote threshold.
        write_lines(process, BASE, 8)
        kernel.placement_tick()
        assert process.page_table.entry(BASE_PAGE)[0] == DRAM_NODE
        assert kernel.pages_migrated == 1

    def test_cold_page_stays_put(self, kernel):
        process = kernel.create_process(placement="migrate")
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=DRAM_NODE)
        write_lines(process, BASE, 4)   # score 2.0 < promote threshold
        kernel.placement_tick()
        assert process.page_table.entry(BASE_PAGE)[0] == PCM_NODE
        assert kernel.pages_migrated == 0

    def test_cooled_resident_demoted(self, kernel):
        process = kernel.create_process(placement="migrate")
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=DRAM_NODE)
        write_lines(process, BASE, 8)
        kernel.placement_tick()        # promoted at score 4.0
        kernel.placement_tick()        # 2.0 — still resident
        kernel.placement_tick()        # 1.0 — hysteresis holds it
        assert process.page_table.entry(BASE_PAGE)[0] == DRAM_NODE
        kernel.placement_tick()        # 0.5 < demote threshold
        assert process.page_table.entry(BASE_PAGE)[0] == PCM_NODE
        assert kernel.pages_migrated == 2

    def test_dram_budget_bounds_residency(self, kernel):
        process, _policy = make_migrate_process(kernel,
                                                dram_budget_pages=1)
        kernel.mmap_bind(process, BASE, 2 * PAGE_SIZE, node_id=DRAM_NODE)
        write_lines(process, BASE, 16)
        write_lines(process, BASE + PAGE_SIZE, 16)
        kernel.placement_tick()
        nodes = [process.page_table.entry(vpage)[0]
                 for vpage in range(BASE_PAGE, BASE_PAGE + 2)]
        assert nodes.count(DRAM_NODE) == 1
        assert kernel.pages_migrated == 1

    def test_ties_break_by_lowest_vpage(self, kernel):
        process, _policy = make_migrate_process(kernel,
                                                dram_budget_pages=1)
        kernel.mmap_bind(process, BASE, 2 * PAGE_SIZE, node_id=DRAM_NODE)
        write_lines(process, BASE + PAGE_SIZE, 16)  # written first...
        write_lines(process, BASE, 16)
        kernel.placement_tick()
        # ...but equal scores promote the lower vpage, not arrival order.
        assert process.page_table.entry(BASE_PAGE)[0] == DRAM_NODE
        assert process.page_table.entry(BASE_PAGE + 1)[0] == PCM_NODE

    def test_per_tick_migration_cap(self, kernel):
        process, _policy = make_migrate_process(
            kernel, max_migrations_per_tick=2)
        kernel.mmap_bind(process, BASE, 3 * PAGE_SIZE, node_id=DRAM_NODE)
        for index in range(3):
            write_lines(process, BASE + index * PAGE_SIZE, 16)
        kernel.placement_tick()
        assert kernel.pages_migrated == 2
        kernel.placement_tick()        # the third (score 4.0) follows
        assert kernel.pages_migrated == 3

    def test_migration_copies_do_not_feed_hotness(self, kernel):
        process, policy = make_migrate_process(kernel)
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=DRAM_NODE)
        write_lines(process, BASE, 8)
        kernel.placement_tick()
        assert process.page_table.entry(BASE_PAGE)[0] == DRAM_NODE
        # The 64 copy lines fired the write listeners *after* the epoch
        # fold and before note_mapped; none may count as page heat.
        assert BASE_PAGE not in policy._epoch_writes

    def test_unmap_drops_tracking_state(self, kernel):
        process, policy = make_migrate_process(kernel)
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=DRAM_NODE)
        write_lines(process, BASE, 8)
        kernel.munmap(process, BASE, PAGE_SIZE)
        kernel.placement_tick()
        assert kernel.pages_migrated == 0
        assert not policy._page_node
        assert not policy._by_phys

    def test_invalid_parameters_rejected(self, kernel):
        with pytest.raises(ValueError):
            MigrantStorePlacement(kernel, dram_budget_pages=0)
        with pytest.raises(ValueError):
            MigrantStorePlacement(kernel, ewma_alpha=0.0)
        with pytest.raises(ValueError):
            MigrantStorePlacement(kernel, promote_threshold=1.0,
                                  demote_threshold=2.0)

    def test_reclaim_retires_policy(self, kernel):
        process, policy = make_migrate_process(kernel)
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=DRAM_NODE)
        process.exit()
        assert policy not in kernel._tick_policies
        assert policy.on_write not in kernel.machine.write_listeners
