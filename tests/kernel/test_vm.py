"""Tests for the kernel's mmap/mbind/munmap and process reclaim."""

import pytest

from repro.config import PAGE_SIZE
from repro.kernel.pagetable import PageFault
from repro.kernel.vm import Kernel, MBindError


class TestProcesses:
    def test_pids_increase(self, kernel):
        assert kernel.create_process().pid < kernel.create_process().pid

    def test_bad_socket_rejected(self, kernel):
        with pytest.raises(MBindError):
            kernel.create_process(affinity_socket=7)


class TestMmapBind:
    def test_maps_pages_on_requested_node(self, kernel):
        process = kernel.create_process()
        kernel.mmap_bind(process, 0x10000, 4 * PAGE_SIZE, node_id=1)
        for vpage in range(0x10, 0x14):
            node, _frame = process.page_table.entry(vpage)
            assert node == 1
        assert kernel.machine.nodes[1].frames_in_use == 4

    def test_unaligned_rejected(self, kernel):
        process = kernel.create_process()
        with pytest.raises(MBindError):
            kernel.mmap_bind(process, 0x10001, PAGE_SIZE, node_id=0)
        with pytest.raises(MBindError):
            kernel.mmap_bind(process, 0x10000, PAGE_SIZE + 1, node_id=0)

    def test_bad_node_rejected(self, kernel):
        process = kernel.create_process()
        with pytest.raises(MBindError):
            kernel.mmap_bind(process, 0x10000, PAGE_SIZE, node_id=5)

    def test_tagging_attributes_writes(self, kernel):
        process = kernel.create_process()
        kernel.mmap_bind(process, 0x10000, PAGE_SIZE, node_id=1,
                         tag="nursery")
        thread = process.spawn_thread()
        thread.access(0x10000, 8, True)
        kernel.machine.flush_all([thread.core_path])
        assert kernel.machine.nodes[1].writes_by_tag == {"nursery": 1}


class TestRetag:
    def test_retag_changes_attribution(self, kernel):
        process = kernel.create_process()
        kernel.mmap_bind(process, 0x10000, PAGE_SIZE, node_id=1, tag="a")
        kernel.retag_range(process, 0x10000, PAGE_SIZE, "b")
        thread = process.spawn_thread()
        thread.access(0x10000, 8, True)
        kernel.machine.flush_all([thread.core_path])
        assert kernel.machine.nodes[1].writes_by_tag == {"b": 1}

    def test_retag_unmapped_faults(self, kernel):
        process = kernel.create_process()
        with pytest.raises(PageFault):
            kernel.retag_range(process, 0x10000, PAGE_SIZE, "x")


class TestMunmap:
    def test_frees_frames(self, kernel):
        process = kernel.create_process()
        kernel.mmap_bind(process, 0x10000, 2 * PAGE_SIZE, node_id=0)
        kernel.munmap(process, 0x10000, 2 * PAGE_SIZE)
        assert kernel.machine.nodes[0].frames_in_use == 0
        assert not process.page_table.is_mapped(0x10)

    def test_unaligned_rejected(self, kernel):
        process = kernel.create_process()
        with pytest.raises(MBindError):
            kernel.munmap(process, 0x10001, PAGE_SIZE)


class TestReclaim:
    def test_process_exit_releases_everything(self, kernel):
        process = kernel.create_process()
        kernel.mmap_bind(process, 0x10000, 4 * PAGE_SIZE, node_id=0)
        kernel.mmap_bind(process, 0x40000, 4 * PAGE_SIZE, node_id=1)
        process.exit()
        assert kernel.machine.nodes[0].frames_in_use == 0
        assert kernel.machine.nodes[1].frames_in_use == 0
        assert process not in kernel.processes

    def test_two_processes_have_separate_tables(self, kernel):
        first = kernel.create_process()
        second = kernel.create_process()
        kernel.mmap_bind(first, 0x10000, PAGE_SIZE, node_id=0)
        assert not second.page_table.is_mapped(0x10)
