"""Tests for the virtual address-space layout."""

import pytest

from repro.config import PAGE_SIZE, ScaleConfig
from repro.kernel.addressspace import AddressSpaceLayout


class TestBuild:
    def test_regions_are_ordered_and_adjacent(self):
        layout = AddressSpaceLayout.build()
        assert layout.boot_start < layout.boot_end <= layout.meta_start
        assert layout.meta_end <= layout.pcm_start
        assert layout.pcm_end == layout.dram_start

    def test_pcm_gets_larger_share(self):
        layout = AddressSpaceLayout.build()
        assert layout.pcm_capacity > layout.dram_capacity

    def test_pcm_fraction_respected(self):
        layout = AddressSpaceLayout.build(pcm_fraction=0.5)
        ratio = layout.pcm_capacity / layout.heap_capacity
        assert abs(ratio - 0.5) < 0.01

    def test_scales(self):
        small = AddressSpaceLayout.build(ScaleConfig(scale=256))
        default = AddressSpaceLayout.build()
        assert small.heap_capacity < default.heap_capacity

    def test_page_zero_unmapped(self):
        assert AddressSpaceLayout.build().boot_start >= PAGE_SIZE


class TestValidation:
    def test_out_of_order_bounds_rejected(self):
        with pytest.raises(ValueError):
            AddressSpaceLayout(PAGE_SIZE, 0, PAGE_SIZE, PAGE_SIZE,
                               PAGE_SIZE, PAGE_SIZE, PAGE_SIZE, PAGE_SIZE)

    def test_unaligned_bound_rejected(self):
        with pytest.raises(ValueError):
            AddressSpaceLayout(100, 200, 300, 400, 500, 600, 600, 700)

    def test_gap_between_pcm_and_dram_rejected(self):
        base = PAGE_SIZE
        with pytest.raises(ValueError):
            AddressSpaceLayout(base, 2 * base, 2 * base, 3 * base,
                               3 * base, 4 * base, 5 * base, 6 * base)


class TestPredicates:
    def test_portion_membership(self):
        layout = AddressSpaceLayout.build()
        assert layout.in_pcm_portion(layout.pcm_start)
        assert not layout.in_pcm_portion(layout.pcm_end)
        assert layout.in_dram_portion(layout.dram_start)
        assert not layout.in_dram_portion(layout.dram_end)
