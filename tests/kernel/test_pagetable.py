"""Unit and property tests for page tables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PAGE_SHIFT, PAGE_SIZE
from repro.kernel.pagetable import PageFault, PageTable


def map_one(table, vpage=5, node=1, frame=3):
    frame_paddr = (node << 40) | (frame << PAGE_SHIFT)
    table.map_page(vpage, node, frame, frame_paddr)
    return frame_paddr


class TestMapping:
    def test_map_and_entry(self):
        table = PageTable()
        map_one(table)
        assert table.entry(5) == (1, 3)
        assert table.is_mapped(5)

    def test_double_map_rejected(self):
        table = PageTable()
        map_one(table)
        with pytest.raises(ValueError):
            map_one(table)

    def test_unmap_returns_frame(self):
        table = PageTable()
        map_one(table)
        assert table.unmap_page(5) == (1, 3)
        assert not table.is_mapped(5)

    def test_unmap_missing_faults(self):
        with pytest.raises(PageFault):
            PageTable().unmap_page(9)

    def test_entry_missing_faults(self):
        with pytest.raises(PageFault):
            PageTable().entry(9)


class TestTranslation:
    def test_translate_within_page(self):
        table = PageTable()
        frame_paddr = map_one(table, vpage=5)
        vaddr = (5 << PAGE_SHIFT) + 300
        expected = (frame_paddr + 300) >> 6
        assert table.translate_line(vaddr) == expected

    def test_translate_unmapped_faults(self):
        with pytest.raises(PageFault) as excinfo:
            PageTable().translate_line(0x5000)
        assert excinfo.value.vaddr == 0x5000

    def test_translate_page_boundaries(self):
        table = PageTable()
        map_one(table, vpage=0, frame=0, node=0)
        first = table.translate_line(0)
        last = table.translate_line(PAGE_SIZE - 1)
        assert last - first == PAGE_SIZE // 64 - 1


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(st.integers(0, 1000), st.integers(0, 500),
                       min_size=1, max_size=40),
       st.integers(0, PAGE_SIZE - 1))
def test_property_translation_matches_mapping(mapping, offset):
    table = PageTable()
    for vpage, frame in mapping.items():
        table.map_page(vpage, 0, frame, frame << PAGE_SHIFT)
    for vpage, frame in mapping.items():
        vaddr = (vpage << PAGE_SHIFT) + offset
        assert table.translate_line(vaddr) == \
            ((frame << PAGE_SHIFT) + offset) >> 6


@settings(max_examples=50, deadline=None)
@given(st.sets(st.integers(0, 200), min_size=1, max_size=30))
def test_property_unmap_restores_faulting(vpages):
    table = PageTable()
    for index, vpage in enumerate(sorted(vpages)):
        table.map_page(vpage, 0, index, index << PAGE_SHIFT)
    for vpage in vpages:
        table.unmap_page(vpage)
    assert table.mapped_pages == 0
    for vpage in vpages:
        with pytest.raises(PageFault):
            table.translate_line(vpage << PAGE_SHIFT)
