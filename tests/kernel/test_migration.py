"""Tests for ``Kernel.migrate_page``: accounting, atomicity under
injected faults, and the sanitizer's migration conservation law."""

import pytest

from repro.config import PAGE_SHIFT, PAGE_SIZE
from repro.faults import FAULTS, FaultPlan
from repro.kernel.pagetable import LINES_PER_PAGE_SHIFT
from repro.kernel.vm import Kernel, MBindError
from repro.machine.memory import OutOfPhysicalMemory
from repro.machine.topology import DRAM_NODE, PCM_NODE
from repro.sanitize import Sanitizer

BASE = 0x40000
BASE_PAGE = BASE >> PAGE_SHIFT
LINES_PER_PAGE = 1 << LINES_PER_PAGE_SHIFT


@pytest.fixture
def bound(kernel):
    """A process with one page backed on PCM."""
    process = kernel.create_process()
    kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=PCM_NODE,
                     tag="mature")
    return process


class TestAccounting:
    def test_page_moves_and_frames_rebalance(self, kernel, bound):
        kernel.migrate_page(bound, BASE_PAGE, DRAM_NODE)
        assert bound.page_table.entry(BASE_PAGE)[0] == DRAM_NODE
        assert kernel.machine.nodes[PCM_NODE].frames_in_use == 0
        assert kernel.machine.nodes[DRAM_NODE].frames_in_use == 1

    def test_copy_charged_as_migration_writes(self, kernel, bound):
        dram = kernel.machine.nodes[DRAM_NODE]
        kernel.migrate_page(bound, BASE_PAGE, DRAM_NODE)
        assert kernel.pages_migrated == 1
        assert kernel.migration_writes == LINES_PER_PAGE
        assert kernel.migration_cycles == (
            LINES_PER_PAGE * kernel.machine.latency.memory_latency(
                remote=True))
        # The copy lands on the destination node, inside both counters.
        assert dram.migration_write_lines == LINES_PER_PAGE
        assert dram.write_lines == LINES_PER_PAGE

    def test_copy_attributed_to_migration_pseudo_tag(self, kernel, bound):
        kernel.migrate_page(bound, BASE_PAGE, DRAM_NODE)
        dram = kernel.machine.nodes[DRAM_NODE]
        assert dram.writes_by_tag["(migration)"] == LINES_PER_PAGE

    def test_space_tag_survives_the_move(self, kernel, bound):
        kernel.migrate_page(bound, BASE_PAGE, DRAM_NODE)
        thread = bound.spawn_thread()
        thread.access(BASE, 8, True)
        kernel.machine.flush_all([thread.core_path])
        dram = kernel.machine.nodes[DRAM_NODE]
        assert dram.writes_by_tag["mature"] == 1

    def test_access_after_migration_hits_new_node(self, kernel, bound):
        # Prime the thread's TLB before the move: the remap must bump
        # the page-table epoch so the stale translation is dropped.
        thread = bound.spawn_thread()
        thread.access(BASE, 8, True)
        kernel.machine.flush_all([thread.core_path])
        kernel.migrate_page(bound, BASE_PAGE, DRAM_NODE)
        thread.access(BASE, 8, True)
        kernel.machine.flush_all([thread.core_path])
        assert kernel.machine.nodes[DRAM_NODE].writes_by_tag["mature"] == 1

    def test_same_node_rejected(self, kernel, bound):
        with pytest.raises(MBindError):
            kernel.migrate_page(bound, BASE_PAGE, PCM_NODE)

    def test_bad_node_rejected(self, kernel, bound):
        with pytest.raises(MBindError):
            kernel.migrate_page(bound, BASE_PAGE, 5)


class TestAtomicityUnderFaults:
    def assert_untouched(self, kernel, process):
        assert kernel.pages_migrated == 0
        assert kernel.migration_writes == 0
        assert kernel.migration_cycles == 0
        assert process.page_table.entry(BASE_PAGE)[0] == PCM_NODE
        assert kernel.machine.nodes[PCM_NODE].frames_in_use == 1
        assert kernel.machine.nodes[DRAM_NODE].frames_in_use == 0
        assert kernel.machine.nodes[DRAM_NODE].migration_write_lines == 0

    def test_injected_fault_leaves_no_partial_state(self, kernel, bound):
        plan = FaultPlan().add("kernel.migrate", error="frame_exhausted")
        with FAULTS.installed(plan):
            with pytest.raises(OutOfPhysicalMemory):
                kernel.migrate_page(bound, BASE_PAGE, DRAM_NODE)
        self.assert_untouched(kernel, bound)

    def test_real_exhaustion_leaves_no_partial_state(self, kernel, bound):
        dram = kernel.machine.nodes[DRAM_NODE]
        while dram.frames_in_use < dram.total_frames:
            dram.allocate_frame()
        with pytest.raises(OutOfPhysicalMemory):
            kernel.migrate_page(bound, BASE_PAGE, DRAM_NODE)
        assert kernel.pages_migrated == 0
        assert kernel.migration_writes == 0
        assert bound.page_table.entry(BASE_PAGE)[0] == PCM_NODE
        assert dram.migration_write_lines == 0

    def test_migrate_policy_survives_mid_tick_fault(self, kernel):
        # MigrantStore treats an injected exhaustion like the real
        # thing: stop promoting this tick, migrate nothing partially.
        process = kernel.create_process(placement="migrate")
        kernel.mmap_bind(process, BASE, PAGE_SIZE, node_id=DRAM_NODE)
        thread = process.spawn_thread()
        # 16 dirty lines: score 8.0 this tick, still 4.0 (= promote
        # threshold) after one decay, so the post-fault retry fires.
        for index in range(16):
            thread.access(BASE + 64 * index, 8, True)
        kernel.machine.flush_all([thread.core_path])
        plan = FaultPlan().add("kernel.migrate", error="frame_exhausted")
        with FAULTS.installed(plan):
            kernel.placement_tick()
        self.assert_untouched(kernel, process)
        # The page is still hot; with the fault disarmed the very next
        # tick completes the promotion the faulted one aborted.
        kernel.placement_tick()
        assert process.page_table.entry(BASE_PAGE)[0] == DRAM_NODE
        assert kernel.pages_migrated == 1


class TestMigrationConservation:
    @pytest.fixture
    def sanitizer(self):
        checker = Sanitizer()
        checker.strict = False
        return checker

    def test_clean_migration_passes(self, kernel, bound, sanitizer):
        sanitizer.rebaseline(kernel.machine)
        kernel.migrate_page(bound, BASE_PAGE, DRAM_NODE)
        sanitizer.check_machine(kernel.machine)
        sanitizer.check_kernel(kernel)
        assert sanitizer.violations == []

    def test_torn_copy_flagged(self, kernel, bound, sanitizer):
        # A migration whose copy wrote fewer lines than a page is the
        # exact bug class this PR burns down; fake one by skimming the
        # kernel counter.
        kernel.migrate_page(bound, BASE_PAGE, DRAM_NODE)
        kernel.migration_writes -= 1
        sanitizer.check_kernel(kernel)
        assert any(v.law == "migration_conservation"
                   for v in sanitizer.violations)

    def test_unattributed_copy_flagged(self, kernel, bound, sanitizer):
        # Node-side: migration lines exceeding the node's total writes
        # means copies were double-charged or mutator writes lost.
        kernel.migrate_page(bound, BASE_PAGE, DRAM_NODE)
        node = kernel.machine.nodes[DRAM_NODE]
        node.migration_write_lines += 1
        sanitizer.check_machine(kernel.machine)
        assert any(v.law == "migration_conservation"
                   for v in sanitizer.violations)

    def test_write_conservation_covers_migrations(self, kernel, bound,
                                                  sanitizer):
        # Copy lines are memory writes with no cache write-back source;
        # the write-conservation law must balance via the migration
        # term rather than flag every migrating run.
        sanitizer.rebaseline(kernel.machine)
        kernel.migrate_page(bound, BASE_PAGE, DRAM_NODE)
        sanitizer.check_machine(kernel.machine)
        assert not any(v.law == "write_conservation"
                       for v in sanitizer.violations)
