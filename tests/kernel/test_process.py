"""Tests for processes and simulated threads."""

import pytest

from repro.config import PAGE_SIZE
from repro.kernel.pagetable import PageFault


@pytest.fixture
def mapped_process(kernel):
    process = kernel.create_process()
    kernel.mmap_bind(process, 0x10000, 4 * PAGE_SIZE, node_id=1)
    return process


class TestThreads:
    def test_threads_get_unique_ids(self, mapped_process):
        t0 = mapped_process.spawn_thread()
        t1 = mapped_process.spawn_thread()
        assert t0.thread_id != t1.thread_id

    def test_thread_follows_affinity(self, kernel):
        process = kernel.create_process(affinity_socket=1)
        assert process.spawn_thread().socket_id == 1

    def test_explicit_socket_override(self, mapped_process):
        assert mapped_process.spawn_thread(socket_id=1).socket_id == 1


class TestAccess:
    def test_single_line_access(self, mapped_process):
        thread = mapped_process.spawn_thread()
        cycles = thread.access(0x10000, 8, False)
        assert cycles > 0
        assert thread.cycles == cycles

    def test_multi_line_access_touches_each_line(self, mapped_process):
        thread = mapped_process.spawn_thread()
        thread.access(0x10000, 256, True)  # 4 lines
        llc = thread.core_path.socket.llc
        assert llc.stats.accesses == 4

    def test_straddling_access(self, mapped_process):
        thread = mapped_process.spawn_thread()
        thread.access(0x10000 + 60, 8, False)  # crosses a line boundary
        assert thread.core_path.socket.llc.stats.accesses == 2

    def test_unmapped_access_faults(self, mapped_process):
        thread = mapped_process.spawn_thread()
        with pytest.raises(PageFault):
            thread.access(0x90000, 8, False)

    def test_compute_accumulates(self, mapped_process):
        thread = mapped_process.spawn_thread()
        thread.compute(100)
        assert thread.cycles == 100

    def test_total_cycles_sums_threads(self, mapped_process):
        t0 = mapped_process.spawn_thread()
        t1 = mapped_process.spawn_thread()
        t0.compute(10)
        t1.compute(20)
        assert mapped_process.total_cycles() == 30
