"""Shared fixtures: small machines and VMs sized for fast tests."""

from __future__ import annotations

import pytest

from repro.config import KB, LatencyModel, MB, ScaleConfig
from repro.core.collectors import create_collector
from repro.kernel.vm import Kernel
from repro.machine.cache import CacheLevel
from repro.machine.memory import MemoryNode
from repro.machine.numa import NumaMachine, Socket
from repro.runtime.jvm import JavaVM

#: Aggressive scaling for unit tests: 4 MB nursery -> 16 KB.
TEST_SCALE = ScaleConfig(scale=256)


def build_test_machine(llc_size: int = 64 * KB, llc_assoc: int = 8,
                       node_capacity: int = 16 * MB,
                       private_l2: int = 0) -> NumaMachine:
    """A small two-socket machine for unit tests."""
    sockets = []
    for socket_id in range(2):
        llc = CacheLevel(llc_size, llc_assoc, name=f"LLC{socket_id}")
        memory = MemoryNode(socket_id, node_capacity,
                            "DRAM" if socket_id == 0 else "PCM")
        sockets.append(Socket(socket_id, llc, memory, cores=4))
    machine = NumaMachine(sockets, LatencyModel())
    if private_l2:
        machine.private_cache_factory = lambda: CacheLevel(
            private_l2, 4, name="L2")
    return machine


def build_test_vm(collector: str = "KG-W", nursery: int = 16 * KB,
                  heap_budget: int = 512 * KB,
                  machine: NumaMachine = None) -> JavaVM:
    """A small managed VM for collector/runtime tests."""
    machine = machine or build_test_machine()
    kernel = Kernel(machine)
    return JavaVM(kernel, create_collector(collector),
                  heap_budget=heap_budget, nursery_size=nursery,
                  app_threads=2, gc_threads=2, scale=TEST_SCALE,
                  boot_noise_rate=0.0, seed=7)


@pytest.fixture
def machine() -> NumaMachine:
    return build_test_machine()


@pytest.fixture
def kernel(machine) -> Kernel:
    return Kernel(machine)


@pytest.fixture
def vm() -> JavaVM:
    return build_test_vm()


@pytest.fixture
def pcm_only_vm() -> JavaVM:
    return build_test_vm("PCM-Only")


@pytest.fixture
def kgn_vm() -> JavaVM:
    return build_test_vm("KG-N")
