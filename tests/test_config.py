"""Tests for the global configuration and scaling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import (
    DEFAULT_LATENCY,
    DEFAULT_SCALE_CONFIG,
    DEFAULT_SEEDS,
    LINE_SIZE,
    MB,
    PAGE_SIZE,
    LatencyModel,
    ScaleConfig,
    scaled,
)


class TestScaled:
    def test_paper_nursery(self):
        assert scaled(4 * MB) == 64 * 1024

    def test_page_aligned(self):
        assert scaled(5 * MB) % PAGE_SIZE == 0

    def test_floor_at_one_page(self):
        assert scaled(1024) == PAGE_SIZE

    @given(st.integers(1, 1 << 36), st.sampled_from([16, 64, 256]))
    def test_monotone_in_input(self, size, scale):
        assert scaled(size + MB, scale) >= scaled(size, scale)


class TestScaleConfig:
    def test_ratios_preserved(self):
        config = DEFAULT_SCALE_CONFIG
        # Nursery : LLC ratio is the paper's 4 MB : 20 MB.
        assert config.llc_size / config.nursery_default == 5.0
        # KG-B's nursery is 3x the default (12 MB : 4 MB).
        assert config.nursery_big_default / config.nursery_default == 3.0
        # GraphChi uses an 8x nursery (32 MB : 4 MB).
        assert config.nursery_graphchi / config.nursery_default == 8.0

    def test_chunk_matches_nursery(self):
        # Jikes uses 4 MB chunks, the same as the default nursery.
        assert DEFAULT_SCALE_CONFIG.chunk_size == \
            DEFAULT_SCALE_CONFIG.nursery_default

    def test_custom_scale(self):
        small = ScaleConfig(scale=256)
        assert small.llc_size < DEFAULT_SCALE_CONFIG.llc_size


class TestLatencyModel:
    def test_ordering(self):
        latency = DEFAULT_LATENCY
        assert latency.l1_hit < latency.l2_hit < latency.llc_hit
        assert latency.llc_hit < latency.local_dram < latency.remote_dram

    def test_memory_latency_selector(self):
        assert DEFAULT_LATENCY.memory_latency(remote=True) == \
            DEFAULT_LATENCY.remote_dram
        assert DEFAULT_LATENCY.memory_latency(remote=False) == \
            DEFAULT_LATENCY.local_dram

    def test_seconds(self):
        latency = LatencyModel(frequency_hz=2_000_000_000)
        assert latency.seconds(2_000_000_000) == pytest.approx(1.0)


class TestSeeds:
    def test_derive_is_deterministic(self):
        assert DEFAULT_SEEDS.derive(1, 2) == DEFAULT_SEEDS.derive(1, 2)

    def test_derive_differs_per_instance(self):
        assert DEFAULT_SEEDS.derive(1, 2) != DEFAULT_SEEDS.derive(1, 3)

    def test_line_size_is_64(self):
        assert LINE_SIZE == 64
