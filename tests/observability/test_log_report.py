"""Tests for the narrator logger and the run-report builder."""

import json
import logging

import pytest

from repro.core.platform import EmulationMode, MeasurementResult
from repro.observability import log as obslog
from repro.observability.report import REPORT_SCHEMA, run_report
from repro.runtime.jvm import RuntimeStats


class TestNarrator:
    def teardown_method(self):
        obslog.disable_console()

    def test_narrate_goes_through_repro_logger(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro"):
            obslog.narrate("ran %s", "fop")
        assert caplog.records[0].message == "ran fop"
        assert caplog.records[0].name == "repro"

    def test_get_logger_children(self):
        assert obslog.get_logger().name == "repro"
        assert obslog.get_logger("harness").name == "repro.harness"

    def test_enable_console_idempotent(self):
        first = obslog.enable_console()
        second = obslog.enable_console()
        assert first is second
        handlers = [h for h in obslog.get_logger().handlers
                    if getattr(h, "_repro_console_handler", False)]
        assert len(handlers) == 1

    def test_disable_console_removes_handler(self):
        obslog.enable_console()
        obslog.disable_console()
        assert not [h for h in obslog.get_logger().handlers
                    if getattr(h, "_repro_console_handler", False)]


def _result(**overrides) -> MeasurementResult:
    fields = dict(
        benchmark="fop",
        collector="KG-W",
        mode=EmulationMode.EMULATION,
        instances=1,
        pcm_write_lines=100,
        dram_write_lines=50,
        elapsed_seconds=0.001,
        per_tag_pcm_writes={"mature.pcm": 80},
        per_tag_dram_writes={"nursery": 40},
        instance_stats=[RuntimeStats(minor_gcs=3, pauses=[5, 7])],
        node_counters=[
            {"node": 0, "kind": "DRAM", "read_lines": 9, "write_lines": 50},
            {"node": 1, "kind": "PCM", "read_lines": 4, "write_lines": 100},
        ],
        llc_stats=[
            {"socket": 0, "hits": 90, "misses": 10, "evictions": 5,
             "dirty_evictions": 2, "hit_rate": 0.9},
            {"socket": 1, "hits": 0, "misses": 0, "evictions": 0,
             "dirty_evictions": 0, "hit_rate": 0.0},
        ],
        qpi_crossings=13,
        host_seconds=1.25,
    )
    fields.update(overrides)
    return MeasurementResult(**fields)


class TestRunReport:
    def test_core_fields(self):
        report = run_report(_result())
        assert report["schema"] == REPORT_SCHEMA
        assert report["benchmark"] == "fop"
        assert report["mode"] == "emulation"
        assert report["wall_time"] == {"emulated_seconds": 0.001,
                                       "host_seconds": 1.25}
        assert report["qpi_crossings"] == 13

    def test_per_socket_counters_and_llc(self):
        report = run_report(_result())
        socket0, socket1 = report["sockets"]
        assert socket0["read_lines"] == 9 and socket0["write_lines"] == 50
        assert socket1["kind"] == "PCM" and socket1["write_lines"] == 100
        assert socket0["llc"]["hit_rate"] == pytest.approx(0.9)
        assert "socket" not in socket0["llc"]

    def test_gc_section(self):
        spans = [{"type": "span", "name": "gc.minor", "ts": 0.0,
                  "dur": 0.1}]
        report = run_report(_result(), gc_spans=spans)
        assert report["gc"]["phases"] == spans
        stats = report["gc"]["instances"][0]
        assert stats["minor_gcs"] == 3
        assert stats["pause_count"] == 2
        assert stats["max_pause_cycles"] == 7

    def test_wear_section_only_when_tracked(self):
        assert "wear" not in run_report(_result())
        tracked = run_report(_result(wear_efficiency=0.9,
                                     wear_imbalance=2.0))
        assert tracked["wear"] == {"efficiency": 0.9, "imbalance": 2.0}

    def test_metrics_passthrough_and_serialisable(self):
        report = run_report(_result(), metrics={"a.b": {"kind": "counter",
                                                        "value": 1}})
        assert report["metrics"]["a.b"]["value"] == 1
        json.dumps(report)  # must be JSON-serialisable as-is

    def test_trace_dropped_surfaced_when_given(self):
        assert "trace" not in run_report(_result())
        report = run_report(_result(), trace_dropped=7)
        assert report["trace"] == {"dropped": 7}
        # Zero is still information: the span record is complete.
        assert run_report(_result(), trace_dropped=0)["trace"] == \
            {"dropped": 0}

    def test_profile_attribution_rides_on_result(self):
        assert "profile" not in run_report(_result())
        profile = {"schema": "repro.profile/v1", "meta": {},
                   "self": {"run": {"pcm.writes": 100}}, "spans": []}
        report = run_report(_result(profile=profile))
        assert report["profile"]["schema"] == "repro.profile/v1"
        assert report["profile"]["attribution"]["run"]["pcm.writes"] == 100
        json.dumps(report)
