"""Histogram percentiles: summary quantiles and shard-order-free merge.

The histogram keeps log-scale buckets (ratio 1.2, ~±10 % relative
error) precisely so that worker-shard summaries can be merged in *any*
completion order and still yield identical p50/p95/p99 — bucket-wise
addition is commutative.  These tests pin the estimates' error bound,
the [min, max] clamp, and the order-independence guarantee the
parallel sweep relies on.
"""

import random

import pytest

from repro.observability.metrics import Histogram, MetricsRegistry


def fill(values, name="pause"):
    histogram = Histogram(name)
    for value in values:
        histogram.observe(value)
    return histogram


class TestQuantiles:
    def test_summary_reports_percentile_keys(self):
        summary = fill(range(1, 101)).summary()
        for key in ("p50", "p95", "p99"):
            assert key in summary

    def test_empty_histogram_quantiles_are_zero(self):
        histogram = Histogram("x")
        assert histogram.quantile(0.5) == 0.0
        assert histogram.summary()["p99"] == 0.0

    def test_single_value_collapses_to_it(self):
        histogram = fill([42])
        for q in (0.5, 0.95, 0.99):
            assert histogram.quantile(q) == 42

    def test_estimates_within_bucket_error(self):
        values = list(range(1, 1001))
        histogram = fill(values)
        for q in (0.5, 0.95, 0.99):
            exact = values[int(q * len(values)) - 1]
            estimate = histogram.quantile(q)
            # Log buckets with ratio 1.2: at most ~10 % relative error.
            assert abs(estimate - exact) <= 0.11 * exact, (q, estimate)

    def test_clamped_to_observed_range(self):
        histogram = fill([10, 11, 12, 1000])
        assert histogram.quantile(0.01) >= 10
        assert histogram.quantile(0.99) <= 1000

    def test_monotone_in_q(self):
        rng = random.Random(1234)
        histogram = fill([rng.expovariate(0.01) for _ in range(500)])
        quantiles = [histogram.quantile(q)
                     for q in (0.1, 0.5, 0.9, 0.95, 0.99)]
        assert quantiles == sorted(quantiles)

    def test_negative_and_zero_values(self):
        histogram = fill([-100, -10, 0, 10, 100])
        assert histogram.quantile(0.01) == -100
        assert histogram.quantile(0.99) <= 100
        assert histogram.quantile(0.5) <= histogram.quantile(0.9)


class TestMergeDeterminism:
    def shards(self):
        """Three worker registries with very different distributions."""
        specs = ([1, 2, 3, 4, 5], [100] * 50, [7, 7000, 70])
        registries = []
        for values in specs:
            registry = MetricsRegistry()
            for value in values:
                registry.observe("gc.pause", value)
            registries.append(registry)
        return registries

    def merged(self, order):
        parent = MetricsRegistry()
        shards = self.shards()
        for index in order:
            parent.merge(shards[index].as_dict())
        return parent.get("gc.pause")

    def test_out_of_order_merge_identical(self):
        baseline = self.merged([0, 1, 2]).summary()
        for order in ([2, 1, 0], [1, 2, 0], [2, 0, 1]):
            assert self.merged(order).summary() == baseline

    def test_merged_equals_unsharded(self):
        single = MetricsRegistry()
        for values in ([1, 2, 3, 4, 5], [100] * 50, [7, 7000, 70]):
            for value in values:
                single.observe("gc.pause", value)
        assert self.merged([2, 0, 1]).summary() == \
            single.get("gc.pause").summary()

    def test_merge_carries_buckets_in_snapshot(self):
        registry = MetricsRegistry()
        registry.observe("h", 12)
        snapshot = registry.as_dict()
        assert snapshot["h"]["buckets"]
        fresh = MetricsRegistry()
        fresh.merge(snapshot)
        assert fresh.get("h").quantile(0.5) == 12

    def test_legacy_snapshot_without_buckets_still_merges(self):
        """Pre-percentile checkpoints lack the buckets key; count/sum/
        min/max must still fold in (quantiles degrade, not crash)."""
        parent = MetricsRegistry()
        parent.merge({"h": {"kind": "histogram", "count": 2, "sum": 30.0,
                            "min": 10.0, "max": 20.0}})
        histogram = parent.get("h")
        assert histogram.count == 2
        assert histogram.quantile(0.5) in (10.0, 20.0) or \
            10.0 <= histogram.quantile(0.5) <= 20.0
