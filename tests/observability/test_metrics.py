"""Tests for the metrics registry."""

import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    sanitize,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestSanitize:
    def test_collector_names(self):
        assert sanitize("KG-W") == "kgw"
        assert sanitize("PCM-Only") == "pcmonly"
        assert sanitize("KG-N+LOO") == "kgnloo"

    def test_dotted_names_keep_hierarchy(self):
        assert sanitize("large.pcm") == "large.pcm"


class TestCounter:
    def test_inc_accumulates(self, registry):
        registry.inc("machine.socket0.llc.hits")
        registry.inc("machine.socket0.llc.hits", 4)
        assert registry.value("machine.socket0.llc.hits") == 5

    def test_counter_cannot_decrease(self, registry):
        with pytest.raises(ValueError):
            registry.inc("kernel.page_faults", -1)

    def test_missing_metric_default(self, registry):
        assert registry.value("no.such.metric") == 0
        assert registry.get("no.such.metric") is None


class TestGauge:
    def test_set_overwrites(self, registry):
        registry.set("runtime.space.nursery.bytes_used", 100)
        registry.set("runtime.space.nursery.bytes_used", 42)
        assert registry.value("runtime.space.nursery.bytes_used") == 42


class TestHistogram:
    def test_summary_statistics(self, registry):
        for value in (10, 20, 30):
            registry.observe("gc.kgw.pause_cycles", value)
        hist = registry.get("gc.kgw.pause_cycles")
        assert hist.count == 3
        assert hist.mean == pytest.approx(20.0)
        assert hist.min == 10 and hist.max == 30

    def test_empty_histogram(self):
        hist = Histogram("x")
        assert hist.mean == 0.0
        assert hist.summary()["count"] == 0


class TestTypeSafety:
    def test_name_bound_to_one_type(self, registry):
        registry.inc("a.counter")
        with pytest.raises(TypeError):
            registry.set("a.counter", 1)
        with pytest.raises(TypeError):
            registry.observe("a.counter", 1)


class TestIntrospection:
    def test_names_sorted_and_prefix_filtered(self, registry):
        registry.inc("machine.socket1.mem.write_lines")
        registry.inc("machine.socket0.llc.hits")
        registry.inc("kernel.mmap_calls")
        assert registry.names("machine.") == [
            "machine.socket0.llc.hits",
            "machine.socket1.mem.write_lines",
        ]

    def test_as_dict_carries_kind(self, registry):
        registry.inc("c")
        registry.set("g", 1.5)
        registry.observe("h", 2)
        snapshot = registry.as_dict()
        assert snapshot["c"] == {"kind": "counter", "value": 1}
        assert snapshot["g"] == {"kind": "gauge", "value": 1.5}
        assert snapshot["h"]["kind"] == "histogram"

    def test_render_table_lists_every_metric(self, registry):
        registry.inc("machine.qpi.crossings", 7)
        registry.observe("runner.run_seconds", 0.5)
        table = registry.render_table(title="Metrics:")
        assert "Metrics:" in table
        assert "machine.qpi.crossings" in table
        assert "counter" in table and "histogram" in table

    def test_render_empty_registry(self, registry):
        assert "no metrics" in registry.render_table()

    def test_reset(self, registry):
        registry.inc("x")
        registry.reset()
        assert len(registry) == 0
