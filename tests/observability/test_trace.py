"""Tests for the event tracer."""

import json

import pytest

from repro.observability.trace import TRACER, Tracer


@pytest.fixture
def tracer():
    """A private tracer with a deterministic clock."""
    ticks = iter(range(1000))
    return Tracer(capacity=16, clock=lambda: float(next(ticks)))


class TestDisabled:
    def test_starts_disabled(self):
        assert Tracer().enabled is False
        assert TRACER.enabled is False

    def test_disabled_records_nothing(self, tracer):
        tracer.event("kernel.mbind", node=1)
        tracer.complete("gc.minor", tracer.begin())
        with tracer.span("platform.run"):
            pass
        assert len(tracer) == 0


class TestRecording:
    def test_event_record(self, tracer):
        tracer.enable()
        tracer.event("monitor.sample", round=8)
        (record,) = tracer.records()
        assert record["type"] == "event"
        assert record["name"] == "monitor.sample"
        assert record["attrs"] == {"round": 8}

    def test_begin_complete_span(self, tracer):
        tracer.enable()
        start = tracer.begin()
        tracer.complete("gc.minor", start, collector="KG-W")
        (span,) = tracer.spans()
        assert span["ts"] == start
        assert span["dur"] > 0
        assert span["attrs"]["collector"] == "KG-W"

    def test_span_context_manager(self, tracer):
        tracer.enable()
        with tracer.span("runner.run", benchmark="fop") as attrs:
            attrs["cached"] = False
        (span,) = tracer.spans("runner.")
        assert span["attrs"] == {"benchmark": "fop", "cached": False}

    def test_prefix_and_kind_filters(self, tracer):
        tracer.enable()
        tracer.event("kernel.mbind")
        tracer.complete("gc.minor", tracer.begin())
        tracer.complete("gc.full", tracer.begin())
        assert len(tracer.spans("gc.")) == 2
        assert len(tracer.events()) == 1
        assert tracer.records(prefix="kernel.")[0]["name"] == "kernel.mbind"


class TestRingBuffer:
    def test_bounded_and_counts_drops(self, tracer):
        tracer.enable()
        for index in range(20):
            tracer.event("e", i=index)
        assert len(tracer) == 16
        assert tracer.dropped == 4
        # Oldest records were dropped, newest retained.
        assert tracer.records()[-1]["attrs"]["i"] == 19

    def test_set_capacity_keeps_newest(self, tracer):
        tracer.enable()
        for index in range(10):
            tracer.event("e", i=index)
        tracer.set_capacity(4)
        assert [r["attrs"]["i"] for r in tracer.records()] == [6, 7, 8, 9]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestCapture:
    def test_capture_restores_state(self, tracer):
        with tracer.capture() as active:
            assert active.enabled
            active.event("x")
        assert tracer.enabled is False
        assert len(tracer) == 1

    def test_capture_clears_by_default(self, tracer):
        tracer.enable()
        tracer.event("old")
        tracer.disable()
        with tracer.capture():
            pass
        assert len(tracer) == 0


class TestExport:
    def test_every_line_is_json(self, tracer, tmp_path):
        tracer.enable()
        tracer.event("kernel.mbind", node=1, tag="nursery")
        tracer.complete("gc.minor", tracer.begin(), pause_cycles=10)
        path = tmp_path / "trace.jsonl"
        written = tracer.export_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert written == len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert {r["type"] for r in parsed} == {"event", "span"}

    def test_export_empty_buffer(self, tracer, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert tracer.export_jsonl(str(path)) == 0
        assert path.read_text() == ""
