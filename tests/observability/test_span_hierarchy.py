"""Hierarchical span stack: ids, parent links, unwinding, boundaries.

The attribution profiler leans on three properties of the span stack:
stable ids with correct parent links, exception-safe unwinding (a
fault mid-phase must not orphan enclosing spans), and the boundary
hook firing *before* every stack change with the path that was active
for the interval just ending.  These tests pin all three.
"""

import pytest

from repro.observability.trace import Tracer


@pytest.fixture
def tracer():
    ticks = iter(range(10000))
    return Tracer(capacity=64, clock=lambda: float(next(ticks)))


class TestZeroOverhead:
    def test_push_returns_none_while_off(self, tracer):
        assert tracer.push("run") is None
        assert tracer.depth() == 0

    def test_pop_none_is_noop(self, tracer):
        tracer.pop(None)  # must not raise
        assert len(tracer) == 0

    def test_span_yields_none_while_off(self, tracer):
        with tracer.span("run") as attrs:
            assert attrs is None
        assert len(tracer) == 0

    def test_boundary_alone_activates_stack(self, tracer):
        """Attribution without tracing: frames exist, no records."""
        tracer.boundary = lambda path, ts: None
        frame = tracer.push("run")
        assert frame is not None
        assert tracer.depth() == 1
        tracer.pop(frame)
        assert tracer.depth() == 0
        assert len(tracer) == 0  # not enabled -> nothing recorded


class TestHierarchy:
    def test_parent_links_and_stable_ids(self, tracer):
        tracer.enable()
        outer = tracer.push("run")
        inner = tracer.push("gc.minor")
        tracer.pop(inner)
        tracer.pop(outer)
        by_name = {s["name"]: s for s in tracer.spans()}
        assert by_name["run"]["id"] == outer[0]
        assert by_name["gc.minor"]["parent"] == outer[0]
        assert "parent" not in by_name["run"]
        assert by_name["gc.minor"]["id"] != by_name["run"]["id"]

    def test_current_path_joins_open_names(self, tracer):
        tracer.enable()
        assert tracer.current_path() == ""
        run = tracer.push("run")
        mutator = tracer.push("mutator")
        assert tracer.current_path() == "run/mutator"
        tracer.pop(mutator)
        assert tracer.current_path() == "run"
        tracer.pop(run)
        assert tracer.current_path() == ""

    def test_sibling_spans_share_parent(self, tracer):
        tracer.enable()
        run = tracer.push("run")
        for name in ("gc.minor", "gc.minor", "monitor.sample"):
            child = tracer.push(name)
            tracer.pop(child)
        tracer.pop(run)
        children = [s for s in tracer.spans() if s["name"] != "run"]
        assert all(s["parent"] == run[0] for s in children)
        assert len({s["id"] for s in tracer.spans()}) == 4

    def test_clear_resets_ids(self, tracer):
        tracer.enable()
        frame = tracer.push("run")
        tracer.pop(frame)
        tracer.clear()
        fresh = tracer.push("run")
        assert fresh[0] == 1

    def test_pop_merges_attrs(self, tracer):
        tracer.enable()
        frame = tracer.push("gc.minor", collector="KG-W")
        tracer.pop(frame, survivors=7)
        (span,) = tracer.spans()
        assert span["attrs"] == {"collector": "KG-W", "survivors": 7}
        assert span["dur"] > 0


class TestUnwinding:
    def test_outer_pop_unwinds_abandoned_inner_frames(self, tracer):
        """An exception that skips inner pops must not orphan spans."""
        tracer.enable()
        outer = tracer.push("run")
        tracer.push("gc.minor")
        tracer.push("gc.trace")
        tracer.pop(outer)  # inner frames abandoned, e.g. by a raise
        assert tracer.depth() == 0
        # Only the popped frame records a span; the abandoned ones
        # never closed so they have no duration to report.
        assert [s["name"] for s in tracer.spans()] == ["run"]

    def test_pop_is_idempotent(self, tracer):
        tracer.enable()
        frame = tracer.push("gc.minor")
        tracer.pop(frame)
        tracer.pop(frame)  # outer finally pops again after inner did
        assert len(tracer.spans()) == 1

    def test_exception_in_span_still_closes(self, tracer):
        tracer.enable()
        with pytest.raises(RuntimeError):
            with tracer.span("gc.minor"):
                raise RuntimeError("fault mid-phase")
        assert tracer.depth() == 0
        (span,) = tracer.spans()
        assert span["dur"] > 0

    def test_pop_after_clear_is_harmless(self, tracer):
        tracer.enable()
        frame = tracer.push("run")
        tracer.clear()
        tracer.pop(frame)  # frame belongs to a dead capture
        assert tracer.depth() == 0


class TestBoundaryHook:
    def test_boundary_fires_with_ending_interval_path(self, tracer):
        """push/pop report the path active *before* the stack changes."""
        calls = []
        tracer.boundary = lambda path, ts: calls.append(path)
        run = tracer.push("run")
        gc = tracer.push("gc.minor")
        tracer.pop(gc)
        tracer.pop(run)
        assert calls == ["", "run", "run/gc.minor", "run"]

    def test_boundary_intervals_telescope(self, tracer):
        """Boundary timestamps partition the run into exclusive
        intervals: consecutive deltas sum to the total elapsed time."""
        crossings = []
        tracer.boundary = lambda path, ts: crossings.append((path, ts))
        run = tracer.push("run")
        gc = tracer.push("gc.minor")
        tracer.pop(gc)
        tracer.pop(run)
        stamps = [ts for _path, ts in crossings]
        assert stamps == sorted(stamps)
        deltas = [b - a for a, b in zip(stamps, stamps[1:])]
        assert sum(deltas) == stamps[-1] - stamps[0]

    def test_boundary_unset_after_profiling(self, tracer):
        tracer.boundary = lambda path, ts: None
        tracer.boundary = None
        assert tracer.push("run") is None  # back to zero-overhead
