"""Instrumentation wiring: the emulation layers feed tracer/metrics.

These tests exercise the instrumented sites with the small test
machines from ``tests.conftest`` — no full benchmark runs needed.
"""

import pytest

from repro.config import PAGE_SIZE
from repro.observability.trace import TRACER

from tests.conftest import build_test_machine, build_test_vm


@pytest.fixture
def traced():
    with TRACER.capture() as tracer:
        yield tracer


class TestMachineCounters:
    def test_qpi_crossings_count_remote_misses(self, kernel):
        process = kernel.create_process(affinity_socket=0)
        kernel.mmap_bind(process, 0x10000, PAGE_SIZE, node_id=1)
        thread = process.spawn_thread()
        thread.access(0x10000, 64, False)
        assert kernel.machine.qpi_crossings == 1
        # Local accesses do not cross the interconnect.
        kernel.mmap_bind(process, 0x20000, PAGE_SIZE, node_id=0)
        thread.access(0x20000, 64, False)
        assert kernel.machine.qpi_crossings == 1

    def test_reset_counters_clears_qpi(self, kernel):
        kernel.machine.qpi_crossings = 5
        kernel.machine.reset_counters()
        assert kernel.machine.qpi_crossings == 0

    def test_llc_hit_rate_and_as_dict(self, machine):
        llc = machine.sockets[0].llc
        llc.access(0, False)
        llc.access(0, False)
        snapshot = llc.stats.as_dict()
        assert snapshot["hits"] == 1 and snapshot["misses"] == 1
        assert snapshot["hit_rate"] == pytest.approx(0.5)


class TestKernelCounters:
    def test_mmap_munmap_counters(self, kernel):
        process = kernel.create_process()
        kernel.mmap_bind(process, 0x10000, 2 * PAGE_SIZE, node_id=0)
        assert kernel.mmap_calls == 1
        assert kernel.pages_mapped == 2
        kernel.munmap(process, 0x10000, PAGE_SIZE)
        assert kernel.munmap_calls == 1
        assert kernel.pages_unmapped == 1

    def test_mbind_trace_event(self, kernel, traced):
        process = kernel.create_process()
        kernel.mmap_bind(process, 0x10000, PAGE_SIZE, node_id=1,
                         tag="mature.pcm")
        (event,) = traced.events("kernel.mbind")
        assert event["attrs"]["node"] == 1
        assert event["attrs"]["tag"] == "mature.pcm"

    def test_page_fault_counted(self, kernel):
        from repro.kernel.pagetable import PageFault

        process = kernel.create_process()
        thread = process.spawn_thread()
        with pytest.raises(PageFault):
            thread.access(0xDEAD000, 8, False)
        assert kernel.page_faults == 1


class TestSchedulerCounters:
    def test_dispatches_counted(self):
        from repro.kernel.scheduler import Scheduler

        def instance(quanta):
            for _ in range(quanta):
                yield

        scheduler = Scheduler(seed=1)
        scheduler.run([instance(3), instance(1)])
        assert scheduler.dispatches == 3 + 1 + 2  # final StopIteration pulls

    def test_dispatches_zero_before_run(self):
        from repro.kernel.scheduler import Scheduler

        assert Scheduler().dispatches == 0


class TestGCSpans:
    def test_minor_collections_emit_spans(self, traced):
        vm = build_test_vm("KG-W")
        ctx = vm.mutator(seed=3)
        root = ctx.alloc(num_refs=1)
        ctx.add_root(root)
        for _ in range(3000):
            ctx.alloc(scalar_bytes=64)
        spans = traced.spans("gc.minor")
        assert spans, "allocation churn should trigger minor collections"
        assert spans[0]["attrs"]["collector"] == "KG-W"
        assert spans[0]["attrs"]["pause_cycles"] > 0
        assert spans[0]["dur"] >= 0

    def test_full_collection_emits_span(self, traced):
        vm = build_test_vm("KG-N")
        vm.full_collect()
        (span,) = traced.spans("gc.full")
        assert span["attrs"]["collector"] == "KG-N"

    def test_disabled_tracer_records_nothing(self):
        TRACER.clear()
        assert not TRACER.enabled
        vm = build_test_vm("KG-N")
        vm.full_collect()
        assert len(TRACER.spans("gc.")) == 0
