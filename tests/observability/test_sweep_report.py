"""The machine-readable sweep report (failures section, accounting)."""

import json

from repro.core.platform import EmulationMode
from repro.harness.experiment import (
    FailureRecord,
    RunOutcome,
    SweepReport,
)
from repro.harness.experiment import RunKey
from repro.observability import sweep_report
from repro.observability.report import SWEEP_REPORT_SCHEMA

from tests.harness.test_checkpoint import _result


def _key(collector="PCM-Only"):
    return RunKey("fop", collector, 1, "default", EmulationMode.EMULATION)


def _report() -> SweepReport:
    ok = RunOutcome(key=_key(), result=_result(collector="PCM-Only"))
    failed = RunOutcome(key=_key("KG-N"), failure=FailureRecord(
        exception_type="TimeoutError", message="run exceeded 5s",
        attempts=3, worker="pool"), attempts=3)
    return SweepReport(outcomes=[ok, failed])


def test_payload_accounts_for_every_key_in_order():
    payload = sweep_report(_report())
    assert payload["schema"] == SWEEP_REPORT_SCHEMA
    assert payload["total_keys"] == 2
    assert payload["succeeded"] == 1
    assert payload["failed"] == 1
    assert [entry["key"]["collector"] for entry in payload["outcomes"]] == [
        "PCM-Only", "KG-N"]


def test_failures_section_carries_the_why():
    failure = sweep_report(_report())["failures"][0]
    assert failure["status"] == "failed"
    assert failure["failure"] == {
        "exception_type": "TimeoutError", "message": "run exceeded 5s",
        "attempts": 3, "worker": "pool"}
    assert "result" not in failure


def test_payload_is_json_serialisable():
    json.dumps(sweep_report(_report(), metrics={"m": {"kind": "counter",
                                                      "value": 1}}),
               sort_keys=True)
