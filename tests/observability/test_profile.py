"""Unit tests for the write-attribution profiler and its exporters.

A fake snapshot callable stands in for the machine/kernel counters, so
attribution arithmetic (exclusive intervals, the OUTSIDE bucket,
conservation) is pinned without a platform run.  The end-to-end
conservation test against real counters lives in
``tests/core/test_attribution.py``.
"""

import json

import pytest

from repro.observability.profile import (
    OUTSIDE,
    PROFILE_SCHEMA,
    Profiler,
    aggregate,
    attributed_total,
    attribution_table,
    counter_names,
    parse_folded,
    to_chrome_trace,
    to_folded,
)
from repro.observability.trace import Tracer
from repro.sanitize.invariants import InvariantViolation, Sanitizer


class FakeCounters:
    """A mutable counter bank standing in for machine+kernel state."""

    def __init__(self):
        self.values = {"pcm.writes": 0, "dram.writes": 0}

    def bump(self, name, amount):
        self.values[name] = self.values.get(name, 0) + amount

    def snapshot(self):
        return dict(self.values)


@pytest.fixture
def tracer():
    ticks = iter(range(10000))
    return Tracer(capacity=256, clock=lambda: float(next(ticks)))


@pytest.fixture
def counters():
    return FakeCounters()


def run_profiled(tracer, counters, body):
    """Bracket ``body(counters)`` in a begin_run/end_run pair."""
    profiler = Profiler(tracer=tracer)
    profiler.begin_run(counters.snapshot)
    body(counters)
    return profiler, profiler.end_run(benchmark="fake")


class TestAttribution:
    def test_deltas_land_on_active_path(self, tracer, counters):
        def body(bank):
            run = tracer.push("run")
            bank.bump("pcm.writes", 10)          # run's own interval
            gc = tracer.push("gc.minor")
            bank.bump("pcm.writes", 3)           # gc.minor's interval
            tracer.pop(gc)
            bank.bump("dram.writes", 5)          # back on run
            tracer.pop(run)

        _profiler, profile = run_profiled(tracer, counters, body)
        assert profile["self"]["run"]["pcm.writes"] == 10
        assert profile["self"]["run"]["dram.writes"] == 5
        assert profile["self"]["run/gc.minor"]["pcm.writes"] == 3

    def test_conservation_by_construction(self, tracer, counters):
        def body(bank):
            bank.bump("pcm.writes", 2)           # before any span
            run = tracer.push("run")
            for _ in range(3):
                gc = tracer.push("gc.minor")
                bank.bump("pcm.writes", 7)
                tracer.pop(gc)
            tracer.pop(run)
            bank.bump("pcm.writes", 1)           # after the root pop

        _profiler, profile = run_profiled(tracer, counters, body)
        assert attributed_total(profile, "pcm.writes") == \
            counters.values["pcm.writes"] == 24

    def test_outside_bucket_collects_unspanned_movement(self, tracer,
                                                        counters):
        def body(bank):
            bank.bump("pcm.writes", 4)
            frame = tracer.push("run")
            tracer.pop(frame)

        _profiler, profile = run_profiled(tracer, counters, body)
        assert profile["self"][OUTSIDE]["pcm.writes"] == 4

    def test_counter_appearing_mid_run_is_attributed(self, tracer,
                                                     counters):
        def body(bank):
            frame = tracer.push("run")
            bank.bump("qpi.crossings", 9)        # not in the baseline
            tracer.pop(frame)

        _profiler, profile = run_profiled(tracer, counters, body)
        assert profile["self"]["run"]["qpi.crossings"] == 9

    def test_zero_deltas_are_omitted(self, tracer, counters):
        def body(bank):
            frame = tracer.push("run")
            bank.bump("pcm.writes", 1)
            tracer.pop(frame)

        _profiler, profile = run_profiled(tracer, counters, body)
        assert "dram.writes" not in profile["self"]["run"]
        assert counter_names(profile) == ["pcm.writes"]

    def test_artifact_shape_and_meta(self, tracer, counters):
        tracer.enable()
        _profiler, profile = run_profiled(
            tracer, counters,
            lambda bank: tracer.pop(tracer.push("run")))
        assert profile["schema"] == PROFILE_SCHEMA
        assert profile["meta"] == {"benchmark": "fake"}
        assert [s["name"] for s in profile["spans"]] == ["run"]
        assert json.loads(json.dumps(profile)) == profile


class TestLifecycle:
    def test_end_run_without_begin_raises(self, tracer):
        with pytest.raises(RuntimeError):
            Profiler(tracer=tracer).end_run()

    def test_end_run_unhooks_boundary(self, tracer, counters):
        profiler, _profile = run_profiled(tracer, counters, lambda bank: None)
        assert tracer.boundary is None
        assert profiler.active is False

    def test_abort_run_unhooks_without_artifact(self, tracer, counters):
        profiler = Profiler(tracer=tracer)
        profiler.begin_run(counters.snapshot)
        assert profiler.active
        profiler.abort_run()
        assert profiler.active is False
        assert tracer.boundary is None

    def test_enable_flag_is_independent_of_active(self, tracer):
        profiler = Profiler(tracer=tracer)
        profiler.enable()
        assert profiler.enabled and not profiler.active
        profiler.disable()
        assert not profiler.enabled


@pytest.fixture
def profile(tracer, counters):
    """A small but fully-featured artifact for exporter tests."""
    tracer.enable()

    def body(bank):
        run = tracer.push("run", benchmark="fake")
        bank.bump("pcm.writes", 10)
        bank.bump("pcm.writes.tag.nursery", 6)
        bank.bump("dram.writes.tag.nursery", 2)
        bank.bump("socket1.mem.writes", 10)
        gc = tracer.push("gc.minor")
        bank.bump("pcm.writes", 3)
        bank.bump("pcm.writes.tag.mature.pcm", 3)
        bank.bump("socket1.llc.misses", 4)
        tracer.pop(gc)
        tracer.pop(run)

    return run_profiled(tracer, counters, body)[1]


class TestChromeExport:
    def test_events_carry_required_keys(self, profile):
        trace = to_chrome_trace(profile)
        assert trace["traceEvents"]
        for event in trace["traceEvents"]:
            for key in ("ph", "ts", "dur", "pid", "tid", "name"):
                assert key in event, f"{event['name']} missing {key}"
            assert event["ph"] == "X"

    def test_span_tree_survives_in_args(self, profile):
        trace = to_chrome_trace(profile)
        by_name = {e["name"]: e for e in trace["traceEvents"]}
        run_id = by_name["run"]["args"]["span_id"]
        assert by_name["gc.minor"]["args"]["parent"] == run_id

    def test_attribution_rides_along(self, profile):
        trace = to_chrome_trace(profile)
        summary = trace["traceEvents"][-1]
        assert summary["name"] == "attribution"
        assert summary["args"]["self"] == profile["self"]
        assert trace["otherData"]["schema"] == PROFILE_SCHEMA

    def test_serialises_to_json(self, profile):
        json.loads(json.dumps(to_chrome_trace(profile), sort_keys=True))


class TestFoldedExport:
    def test_round_trip(self, profile):
        folded = to_folded(profile, counter="pcm.writes")
        stacks = parse_folded(folded)
        assert stacks == {"run": 10, "run;gc.minor": 3}

    def test_zero_paths_omitted(self, profile):
        stacks = parse_folded(to_folded(profile, counter="dram.writes"))
        assert "run;gc.minor" not in stacks

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_folded("no-count-here")
        with pytest.raises(ValueError):
            parse_folded("stack notanumber")

    def test_parse_merges_duplicate_stacks(self):
        assert parse_folded("a;b 1\na;b 2\n\n") == {"a;b": 3}


class TestAggregation:
    def test_by_phase_rows(self, profile):
        rows = aggregate(profile, by="phase")
        by_path = {row["path"]: row for row in rows}
        assert by_path["run"]["pcm.writes"] == 10
        assert by_path["run/gc.minor"]["pcm.writes"] == 3

    def test_by_space_parses_tags(self, profile):
        rows = aggregate(profile, by="space")
        nursery = next(r for r in rows if r["tag"] == "nursery")
        assert nursery == {"path": "run", "tag": "nursery",
                           "pcm.writes": 6, "dram.writes": 2}
        mature = next(r for r in rows if r["tag"] == "mature.pcm")
        assert mature["path"] == "run/gc.minor"

    def test_by_socket_groups_metrics(self, profile):
        rows = aggregate(profile, by="socket")
        run_row = next(r for r in rows if r["path"] == "run")
        assert run_row["socket"] == "socket1"
        assert run_row["mem.writes"] == 10

    def test_unknown_view_raises(self, profile):
        with pytest.raises(ValueError):
            aggregate(profile, by="moon-phase")

    def test_table_renders_all_views(self, profile):
        for by in ("phase", "space", "socket"):
            table = attribution_table(profile, by=by, title="t")
            assert table.startswith("t")
            assert "|" in table
        assert "no attribution data" in attribution_table(
            {"self": {}}, by="space")


class TestConservationLaw:
    def test_matching_sums_pass(self):
        checker = Sanitizer()
        checker.install(strict=True)
        try:
            checker.check_attribution({"pcm.writes": 24},
                                      {"pcm.writes": 24})
        finally:
            checker.uninstall()
        assert checker.violations == []

    def test_mismatch_flags_attribution_conservation(self):
        checker = Sanitizer()
        checker.install(strict=False)
        try:
            checker.check_attribution({"pcm.writes": 23},
                                      {"pcm.writes": 24, "dram.writes": 0},
                                      site="test")
        finally:
            checker.uninstall()
        (violation,) = checker.violations
        assert violation.law == "attribution_conservation"
        assert "pcm.writes" in violation.detail

    def test_strict_mode_raises(self):
        checker = Sanitizer()
        checker.install(strict=True)
        try:
            with pytest.raises(InvariantViolation):
                checker.check_attribution({}, {"pcm.writes": 1})
        finally:
            checker.uninstall()
