"""Tests for the experiment registry and cheap experiment modules."""

import importlib

import pytest

from repro.experiments import EXPERIMENTS, ExperimentOutput
from repro.experiments import table1
from repro.harness.experiment import ExperimentRunner


class TestRegistry:
    def test_every_paper_artifact_listed(self):
        for name in ("table1", "table2", "figure3", "figure4", "figure5",
                     "figure6", "figure7", "figure8", "table3"):
            assert name in EXPERIMENTS

    def test_extensions_listed(self):
        for name in ("wear_analysis", "crystal_gazer", "llc_sensitivity",
                     "scale_robustness", "observer_sweep",
                     "writes_breakdown"):
            assert name in EXPERIMENTS

    def test_modules_importable_with_run(self):
        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert callable(module.run), name


class TestTable1:
    def test_runs_without_measurements(self):
        runner = ExperimentRunner()
        output = table1.run(runner)
        assert isinstance(output, ExperimentOutput)
        assert runner.executions == 0  # pure configuration
        assert "Nursery" in output.text

    def test_data_matches_policy(self):
        output = table1.run(ExperimentRunner())
        assert output.data["KG-N"]["nursery_dram"]
        assert output.data["KG-W"]["observer"]
        assert not output.data["KG-W-MDO"]["mdo"]

    def test_str_is_text(self):
        output = table1.run(ExperimentRunner())
        assert str(output) == output.text
