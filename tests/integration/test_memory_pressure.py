"""Memory-pressure behaviour: emergency collections and OOM paths."""

import pytest

from repro.config import KB
from repro.runtime.heap import OutOfMemoryError
from repro.runtime.objectmodel import LOS_THRESHOLD

from tests.conftest import build_test_vm


class TestEmergencyCollection:
    def test_mature_pressure_triggers_full_gc(self):
        # A tiny chunked budget forces an emergency mark/sweep once
        # promoted garbage piles up.
        vm = build_test_vm("KG-N", nursery=8 * KB, heap_budget=128 * KB)
        ctx = vm.mutator()
        # A rotating window of rooted objects: every minor GC promotes
        # the window, and the previous window's objects become mature
        # garbage that only a full collection can reclaim.
        window = [ctx.add_root(None) for _ in range(40)]
        for round_index in range(600):
            slot = window[round_index % len(window)]
            ctx.set_root(slot, ctx.alloc(scalar_bytes=512))
        assert vm.stats.full_gcs > 0
        # The heap never exceeded its budget.
        assert vm.heap.committed <= vm.heap.heap_budget

    def test_los_pressure_triggers_full_gc(self):
        vm = build_test_vm("KG-N", nursery=8 * KB, heap_budget=96 * KB)
        ctx = vm.mutator()
        index = ctx.add_root(None)
        for _ in range(40):
            obj = ctx.alloc(scalar_bytes=3 * LOS_THRESHOLD)
            ctx.set_root(index, obj)  # only the newest survives
        assert vm.stats.full_gcs > 0

    def test_hopeless_allocation_raises_oom(self):
        vm = build_test_vm("KG-N", nursery=8 * KB, heap_budget=64 * KB)
        ctx = vm.mutator()
        keep = []
        with pytest.raises(OutOfMemoryError):
            for _ in range(64):
                obj = ctx.alloc(scalar_bytes=3 * LOS_THRESHOLD)
                keep.append(ctx.add_root(obj))  # all live: must OOM

    def test_heap_recovers_after_pressure(self):
        vm = build_test_vm("KG-N", nursery=8 * KB, heap_budget=96 * KB)
        ctx = vm.mutator()
        index = ctx.add_root(None)
        for _ in range(30):
            ctx.set_root(index, ctx.alloc(scalar_bytes=3 * LOS_THRESHOLD))
        ctx.clear_root(index)
        vm.full_collect()
        # All large garbage reclaimed: LOS chunks released.
        assert vm.heap.space("large.pcm").bytes_committed == 0


class TestChunkRecycling:
    def test_freed_chunks_are_reused_not_remapped(self):
        vm = build_test_vm("KG-N", nursery=8 * KB, heap_budget=256 * KB)
        ctx = vm.mutator()
        index = ctx.add_root(None)
        node = vm.kernel.machine.nodes[1]
        for _ in range(10):
            ctx.set_root(index, ctx.alloc(scalar_bytes=3 * LOS_THRESHOLD))
        frames_after_first_wave = node.frames_in_use
        for _ in range(30):
            ctx.set_root(index, ctx.alloc(scalar_bytes=3 * LOS_THRESHOLD))
            vm.full_collect()
        # Chunks stay mapped and recycle: physical footprint is stable.
        assert node.frames_in_use <= frames_after_first_wave + 64
