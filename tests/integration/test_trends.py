"""End-to-end trend tests: the paper's findings must hold.

These use the real benchmarks at default scale, so they are the slowest
tests in the suite; each asserts one of the paper's seven findings (or
a sub-claim) qualitatively.
"""

import pytest

from repro.core.platform import EmulationMode
from repro.harness.experiment import ExperimentRunner

#: One shared runner keeps the module's total runtime bounded.
runner = ExperimentRunner()


class TestFinding1EmulationMatchesSimulation:
    def test_kgw_reduction_agrees_across_modes(self):
        for mode in (EmulationMode.EMULATION, EmulationMode.SIMULATION):
            baseline = runner.pcm_writes("lusearch", collector="PCM-Only",
                                         mode=mode)
            kgw = runner.pcm_writes("lusearch", collector="KG-W", mode=mode)
            assert kgw < 0.6 * baseline

    def test_kgn_reduction_is_small_with_large_llc(self):
        # A 20 MB-equivalent LLC absorbs most nursery writes.
        baseline = runner.pcm_writes("lusearch", collector="PCM-Only")
        kgn = runner.pcm_writes("lusearch", collector="KG-N")
        assert 0.5 * baseline < kgn < baseline


class TestFinding2JavaVsCpp:
    def test_java_writes_more_than_cpp_on_pcm_only(self):
        for app in ("pr", "cc"):
            java = runner.pcm_writes(app, collector="PCM-Only")
            cpp = runner.pcm_writes(app + ".cpp", collector="PCM-Only")
            assert 1.2 * cpp < java < 4.0 * cpp

    def test_kgw_brings_java_below_cpp(self):
        for app in ("pr", "cc", "als"):
            kgw = runner.pcm_writes(app, collector="KG-W")
            cpp = runner.pcm_writes(app + ".cpp", collector="PCM-Only")
            assert kgw < cpp


class TestFinding3Multiprogramming:
    def test_kgw_dampens_absolute_growth(self):
        # Finding 3 compares absolute write increases: KG-W's four
        # instances add far fewer PCM writes than PCM-Only's.
        bench = "lusearch"
        pcm_1 = runner.pcm_writes(bench, "PCM-Only", instances=1)
        pcm_4 = runner.pcm_writes(bench, "PCM-Only", instances=4)
        kgw_1 = runner.pcm_writes(bench, "KG-W", instances=1)
        kgw_4 = runner.pcm_writes(bench, "KG-W", instances=4)
        assert kgw_4 - kgw_1 < 0.5 * (pcm_4 - pcm_1)
        assert kgw_4 < pcm_4

    def test_pcm_only_growth_is_superlinear(self):
        bench = "lusearch"
        pcm_1 = runner.pcm_writes(bench, "PCM-Only", instances=1)
        pcm_4 = runner.pcm_writes(bench, "PCM-Only", instances=4)
        assert pcm_4 > 4.5 * pcm_1


class TestFinding4SuiteDiversity:
    def test_graphchi_writes_dwarf_dacapo(self):
        dacapo = runner.pcm_writes("fop", "PCM-Only")
        graphchi = runner.pcm_writes("pr", "PCM-Only")
        assert graphchi > 5 * dacapo

    def test_pjbb_exceeds_typical_dacapo(self):
        assert runner.pcm_writes("pjbb", "PCM-Only") > \
            runner.pcm_writes("fop", "PCM-Only")


class TestFinding5WriteRates:
    def test_graph_apps_exceed_recommended_rate(self):
        from repro.config import RECOMMENDED_WRITE_RATE_MBS
        for app in ("pr", "cc", "als"):
            assert runner.write_rate(app, "PCM-Only") > \
                RECOMMENDED_WRITE_RATE_MBS

    def test_kgw_reduces_rates(self):
        for app in ("pr", "lusearch"):
            assert runner.write_rate(app, "KG-W") < \
                runner.write_rate(app, "PCM-Only")


class TestFinding6GraphChiOptimizations:
    def test_loo_reduces_kgn_writes(self):
        kgn = runner.pcm_writes("pr", "KG-N")
        kgn_loo = runner.pcm_writes("pr", "KG-N+LOO")
        assert kgn_loo < kgn

    def test_removing_loo_from_kgw_costs(self):
        kgw = runner.pcm_writes("pr", "KG-W")
        without = runner.pcm_writes("pr", "KG-W-LOO")
        assert 1.3 * kgw < without < 3.0 * kgw

    def test_kgb_alone_adds_little_over_kgn(self):
        kgn = runner.pcm_writes("pr", "KG-N")
        kgb = runner.pcm_writes("pr", "KG-B")
        assert abs(kgb - kgn) < 0.25 * kgn

    def test_mdo_removal_is_marginal(self):
        kgw = runner.pcm_writes("pr", "KG-W")
        without = runner.pcm_writes("pr", "KG-W-MDO")
        assert without < 1.4 * kgw


class TestFinding7LargeDatasets:
    def test_large_dataset_increases_total_writes(self):
        default = runner.pcm_writes("lusearch", "PCM-Only")
        large = runner.pcm_writes("lusearch", "PCM-Only", dataset="large")
        assert large > 1.5 * default

    def test_graph_rate_drops_with_large_input(self):
        default = runner.write_rate("cc", "PCM-Only")
        large = runner.write_rate("cc", "PCM-Only", dataset="large")
        assert large < default
