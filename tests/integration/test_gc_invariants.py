"""Property-based GC invariants: random mutator programs.

A random sequence of allocations, reference stores, root updates, and
collections must never lose a reachable object, never resurrect a dead
one into a space list, and must keep every space's object list
consistent with the objects' ``space`` fields.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import build_test_vm

COLLECTORS = ["PCM-Only", "KG-N", "KG-B", "KG-W", "KG-W-LOO", "KG-W-MDO"]


def reachable_set(vm):
    seen = set()
    stack = [r for r in vm.roots if r is not None]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        stack.extend(ref for ref in obj.refs if ref is not None)
    return seen


def all_space_objects(vm):
    objects = {}
    for space in vm.heap.spaces.values():
        for obj in space.live_objects():
            objects.setdefault(id(obj), []).append((obj, space.name))
    return objects


def check_invariants(vm):
    residents = all_space_objects(vm)
    # 1. No object appears in two spaces.
    for oid, entries in residents.items():
        assert len(entries) == 1, f"object in {len(entries)} spaces"
        obj, space_name = entries[0]
        # 2. Each object's space field matches its hosting space.
        assert obj.space == space_name
    # 3. Every reachable object is resident somewhere.
    for oid in reachable_set(vm):
        assert oid in residents, "reachable object lost"


@st.composite
def mutator_scripts(draw):
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["alloc", "alloc_ref", "alloc_large", "link",
                             "unlink", "write", "minor", "full"]),
            st.integers(0, 10_000)),
        min_size=5, max_size=120))


@settings(max_examples=25, deadline=None)
@given(collector=st.sampled_from(COLLECTORS), script=mutator_scripts())
def test_random_programs_preserve_reachability(collector, script):
    vm = build_test_vm(collector)
    ctx = vm.mutator()
    rng = random.Random(1234)
    rooted = []  # (root_index, obj)
    for action, value in script:
        if action == "alloc":
            obj = ctx.alloc(scalar_bytes=16 + value % 200)
            if value % 3 == 0:
                rooted.append((ctx.add_root(obj), obj))
        elif action == "alloc_ref":
            obj = ctx.alloc(scalar_bytes=16, num_refs=1 + value % 4)
            if rooted:
                _, parent = rooted[value % len(rooted)]
                if parent.refs:
                    ctx.write_ref(parent, value % len(parent.refs), obj)
            else:
                rooted.append((ctx.add_root(obj), obj))
        elif action == "alloc_large":
            obj = ctx.alloc(scalar_bytes=3000 + value % 2000)
            if value % 2 == 0:
                rooted.append((ctx.add_root(obj), obj))
        elif action == "link" and len(rooted) >= 2:
            _, a = rooted[value % len(rooted)]
            _, b = rooted[(value + 1) % len(rooted)]
            if a.refs:
                ctx.write_ref(a, value % len(a.refs), b)
        elif action == "unlink" and rooted:
            index, _obj = rooted.pop(value % len(rooted))
            ctx.clear_root(index)
        elif action == "write" and rooted:
            _, obj = rooted[value % len(rooted)]
            ctx.write_scalar_random(obj)
        elif action == "minor":
            vm.minor_collect()
        elif action == "full":
            vm.full_collect()
    vm.full_collect()
    check_invariants(vm)
    # Rooted objects must all have survived, in non-young spaces.
    residents = all_space_objects(vm)
    for _index, obj in rooted:
        assert id(obj) in residents


@settings(max_examples=10, deadline=None)
@given(script=mutator_scripts())
def test_collectors_agree_on_live_set(script):
    """Reachable objects after a full GC are collector-independent."""
    sizes = []
    for collector in ("PCM-Only", "KG-W"):
        vm = build_test_vm(collector)
        ctx = vm.mutator()
        rooted = []
        for action, value in script:
            if action in ("alloc", "alloc_ref", "alloc_large"):
                obj = ctx.alloc(scalar_bytes=16 + value % 100)
                if value % 3 == 0:
                    rooted.append((ctx.add_root(obj), obj))
            elif action == "unlink" and rooted:
                index, _ = rooted.pop(value % len(rooted))
                ctx.clear_root(index)
            elif action == "minor":
                vm.minor_collect()
        vm.full_collect()
        sizes.append(len(reachable_set(vm)))
    assert sizes[0] == sizes[1]
